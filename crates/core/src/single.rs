//! Phase 2 in isolation: `DetectCk(u, v)` for one designated edge.
//!
//! This is Algorithm 1 exactly as the paper analyzes it ("let us describe
//! Phase 2 for edge e only, assuming that no other checks … are running
//! concurrently"). It is fully deterministic, needs no ε-farness, and by
//! Lemma 2 rejects **iff** some `Ck` passes through the edge — the
//! strongest correctness statement in the paper, which the test-suite
//! checks edge-exhaustively against the sequential oracle.
//!
//! Round mapping (engine round → paper round): engine round `r` sends the
//! messages the paper sends "at round `r+1`"; the final decision happens
//! at engine round `⌊k/2⌋` on the sequences sent at engine round
//! `⌊k/2⌋ − 1`.

use crate::decide::RejectWitness;
use crate::msg::{SeqBundle, SeqPool};
use crate::prune::{build_send_set_scanned, PrunerKind, SendSetScratch};
use crate::scan::{decide_all_rejects_scanned, ScanBackend, ScanScratch};
use crate::seq::{IdSeq, MAX_K};
use ck_congest::engine::{EngineConfig, EngineError, RunOutcome};
use ck_congest::graph::{Edge, Graph, NodeId};
use ck_congest::node::{Inbox, NodeInit, Outbox, Program, Status};
use ck_congest::session::Session;

/// Per-node outcome of the single-edge detector.
#[derive(Clone, Debug, Default)]
pub struct SingleVerdict {
    /// True when this node output `reject` (a `Ck` through the edge was
    /// assembled here).
    pub reject: bool,
    /// The witness pair when rejecting.
    pub witness: Option<RejectWitness>,
    /// Every witnessing pair found at this node (for ablation probes;
    /// the protocol itself only needs one).
    pub all_witnesses: Vec<RejectWitness>,
    /// Largest number of sequences this node put into one message — the
    /// quantity Lemma 3 bounds by `(k−t+1)^(t−1)`.
    pub max_sent_seqs: usize,
}

/// The `DetectCk(u, v)` state machine for one node.
pub struct DetectSingle {
    k: usize,
    half_k: u32,
    myid: NodeId,
    u_id: NodeId,
    v_id: NodeId,
    pruner: PrunerKind,
    /// Resolved collision-scan backend for prune/decide.
    scan_backend: ScanBackend,
    /// Sequences broadcast at the last send round (consulted for even k).
    own_sent: Vec<IdSeq>,
    verdict: SingleVerdict,
    /// Recycled receive buffer (collect output).
    recv: Vec<IdSeq>,
    /// Recycled send-set buffer.
    send_buf: Vec<IdSeq>,
    /// Pruner workspace.
    scratch: SendSetScratch,
    /// Collision-scan workspace (block + kernel rows).
    scan: ScanScratch,
    /// Recycling pool for outgoing bundle backings, refilled by the
    /// payloads the engine's broadcast slot evicts.
    pool: SeqPool,
}

impl DetectSingle {
    /// Creates the program for one node; `edge_ids` are the identities of
    /// the designated edge's endpoints. Uses the build's best
    /// collision-scan backend; see [`DetectSingle::with_scan`].
    pub fn new(k: usize, init: &NodeInit, edge_ids: (NodeId, NodeId), pruner: PrunerKind) -> Self {
        DetectSingle::with_scan(k, init, edge_ids, pruner, ScanBackend::auto())
    }

    /// As [`DetectSingle::new`] with an explicit collision-scan backend
    /// (identical outputs on every backend; benches and the
    /// differential suite force specific paths through this).
    pub fn with_scan(
        k: usize,
        init: &NodeInit,
        edge_ids: (NodeId, NodeId),
        pruner: PrunerKind,
        scan: ScanBackend,
    ) -> Self {
        assert!((3..=MAX_K).contains(&k), "k = {k} outside supported range");
        DetectSingle {
            k,
            half_k: (k / 2) as u32,
            myid: init.id,
            u_id: edge_ids.0,
            v_id: edge_ids.1,
            pruner,
            scan_backend: scan.resolve(),
            own_sent: Vec::new(),
            verdict: SingleVerdict::default(),
            recv: Vec::new(),
            send_buf: Vec::new(),
            scratch: SendSetScratch::default(),
            scan: ScanScratch::new(),
            pool: SeqPool::new(),
        }
    }

    /// Dedups the received sequences into the recycled `recv` buffer,
    /// reading the shared broadcast payloads in place.
    fn collect(&mut self, inbox: Inbox<'_, SeqBundle>) {
        self.recv.clear();
        for inc in inbox.iter() {
            self.recv.extend_from_slice(inc.msg.as_slice());
        }
        self.recv.sort_unstable();
        self.recv.dedup();
    }

    /// Returns an evicted broadcast payload's buffer to the pool.
    fn recycle(&mut self, evicted: Option<SeqBundle>) {
        if let Some(bundle) = evicted {
            self.pool.put(bundle);
        }
    }
}

impl Program for DetectSingle {
    type Msg = SeqBundle;
    type Verdict = SingleVerdict;

    fn step(
        &mut self,
        round: u32,
        inbox: Inbox<'_, SeqBundle>,
        out: &mut Outbox<SeqBundle>,
    ) -> Status {
        if round == 0 {
            // Paper round 1: the endpoints seed their own ID.
            if self.myid == self.u_id || self.myid == self.v_id {
                let seed = IdSeq::single(self.myid);
                if self.half_k == 1 {
                    // k ∈ {3}: the seed round is also the last send round.
                    self.own_sent.clear();
                    self.own_sent.push(seed);
                }
                self.verdict.max_sent_seqs = 1;
                let bundle = self.pool.bundle_from(&[seed]);
                let evicted = out.broadcast(bundle);
                self.recycle(evicted);
            }
            return Status::Running;
        }
        if round < self.half_k {
            // Paper round t = round + 1: prune and forward, entirely
            // within recycled buffers.
            self.collect(inbox);
            build_send_set_scanned(
                self.pruner,
                self.scan_backend,
                &self.recv,
                self.myid,
                self.k,
                round as usize + 1,
                &mut self.scratch,
                &mut self.scan,
                &mut self.send_buf,
            );
            if !self.send_buf.is_empty() {
                self.verdict.max_sent_seqs = self.verdict.max_sent_seqs.max(self.send_buf.len());
                self.own_sent.clear();
                self.own_sent.extend_from_slice(&self.send_buf);
                let bundle = self.pool.bundle_from(&self.send_buf);
                let evicted = out.broadcast(bundle);
                self.recycle(evicted);
            } else if round + 1 == self.half_k {
                // Nothing to contribute at the final send round: stale
                // own_sent from earlier rounds must not enter the decision.
                self.own_sent.clear();
            }
            return Status::Running;
        }
        // round == half_k: decision round.
        self.collect(inbox);
        let mut all = Vec::new();
        decide_all_rejects_scanned(
            self.scan_backend,
            self.k,
            self.myid,
            &self.own_sent,
            &self.recv,
            &mut self.scan,
            &mut all,
        );
        if !all.is_empty() {
            self.verdict.reject = true;
            self.verdict.witness = all.first().cloned();
            self.verdict.all_witnesses = all;
        }
        Status::Halted
    }

    fn verdict(&self) -> SingleVerdict {
        self.verdict.clone()
    }
}

/// Outcome of a whole-network single-edge run.
#[derive(Clone, Debug)]
pub struct SingleRun {
    /// True if at least one node rejected (network-level reject).
    pub reject: bool,
    /// Engine outcome (report + per-node verdicts).
    pub outcome: RunOutcome<SingleVerdict>,
}

impl SingleRun {
    /// Largest per-message sequence count over all nodes and rounds (the
    /// measured side of Lemma 3).
    pub fn max_sent_seqs(&self) -> usize {
        self.outcome.verdicts.iter().map(|v| v.max_sent_seqs).max().unwrap_or(0)
    }
}

/// Runs `DetectCk` for edge `e` of `g` and aggregates the network verdict.
pub fn detect_ck_through_edge(
    g: &Graph,
    k: usize,
    e: Edge,
    pruner: PrunerKind,
    config: &EngineConfig,
) -> Result<SingleRun, EngineError> {
    assert!(g.has_edge(e.a, e.b), "designated edge must exist");
    let ids = (g.id(e.a), g.id(e.b));
    let mut cfg = config.clone();
    cfg.max_rounds = (k / 2) as u32 + 1;
    let outcome = Session::builder(g)
        .config(cfg)
        .build()
        .run(|init| DetectSingle::new(k, &init, ids, pruner))?;
    let reject = outcome.verdicts.iter().any(|v| v.reject);
    Ok(SingleRun { reject, outcome })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ck_congest::engine::Executor;
    use ck_graphgen::basic::{cycle, figure1, petersen, theta};
    use ck_graphgen::farness::{has_ck_through_edge, is_valid_ck};

    fn run_edge(g: &Graph, k: usize, e: Edge) -> SingleRun {
        detect_ck_through_edge(g, k, e, PrunerKind::Representative, &EngineConfig::default())
            .unwrap()
    }

    #[test]
    fn detects_the_full_cycle_from_any_edge() {
        for k in 3..10 {
            let g = cycle(k);
            for &e in g.edges() {
                let out = run_edge(&g, k, e);
                assert!(out.reject, "C{k} through every edge of the cycle");
            }
        }
    }

    #[test]
    fn accepts_when_no_cycle_of_that_length() {
        let g = cycle(6);
        for &e in g.edges() {
            assert!(!run_edge(&g, 5, e).reject, "C6 has no C5");
            assert!(!run_edge(&g, 4, e).reject, "C6 has no C4");
        }
    }

    #[test]
    fn figure1_c5_detected_at_z() {
        let g = figure1();
        let out = run_edge(&g, 5, Edge::new(0, 1));
        assert!(out.reject);
        // Node z (index 4) is the one antipodal to {u,v}: it decides.
        let rejecting: Vec<usize> = out
            .outcome
            .verdicts
            .iter()
            .enumerate()
            .filter(|(_, v)| v.reject)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(rejecting, vec![4]);
        let w = out.outcome.verdicts[4].witness.clone().unwrap();
        let cyc = w.cycle_ids();
        let idx: Vec<_> = cyc.iter().map(|&id| g.index_of(id).unwrap()).collect();
        assert!(is_valid_ck(&g, 5, &idx));
    }

    #[test]
    fn witness_cycles_are_always_real() {
        // Whenever any node rejects, its witness must reconstruct to an
        // actual Ck of the graph through the designated edge.
        let g = theta(4, 3);
        for k in 3..=9 {
            for &e in g.edges() {
                let out = run_edge(&g, k, e);
                for v in &out.outcome.verdicts {
                    if let Some(w) = &v.witness {
                        let idx: Vec<_> =
                            w.cycle_ids().iter().map(|&id| g.index_of(id).unwrap()).collect();
                        assert!(is_valid_ck(&g, k, &idx), "bogus witness k={k} e={e:?}");
                        // The designated edge is on the cycle.
                        let on_cycle = (0..k).any(|i| {
                            let x = idx[i];
                            let y = idx[(i + 1) % k];
                            Edge::new(x, y) == e
                        });
                        assert!(on_cycle, "witness cycle must pass through {e:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn exactness_against_oracle_exhaustive() {
        // Lemma 2 both directions, on structurally diverse graphs.
        let graphs: Vec<Graph> = vec![petersen(), theta(3, 2), figure1(), cycle(8)];
        for g in &graphs {
            for k in 3..=8 {
                for &e in g.edges() {
                    let expected = has_ck_through_edge(g, k, e);
                    let got = run_edge(g, k, e).reject;
                    assert_eq!(got, expected, "k={k}, e={e:?}");
                }
            }
        }
    }

    #[test]
    fn literal_and_representative_pruners_agree() {
        let g = theta(3, 2);
        for k in 3..=8 {
            for &e in g.edges() {
                let a =
                    detect_ck_through_edge(&g, k, e, PrunerKind::Literal, &EngineConfig::default())
                        .unwrap();
                let b = detect_ck_through_edge(
                    &g,
                    k,
                    e,
                    PrunerKind::Representative,
                    &EngineConfig::default(),
                )
                .unwrap();
                assert_eq!(a.reject, b.reject, "k={k} e={e:?}");
                assert_eq!(a.outcome.report.total_messages(), b.outcome.report.total_messages());
            }
        }
    }

    #[test]
    fn executors_agree() {
        let g = petersen();
        for k in [5usize, 6] {
            for &e in g.edges() {
                let mut cfg =
                    EngineConfig { executor: Executor::Sequential, ..EngineConfig::default() };
                let a = detect_ck_through_edge(&g, k, e, PrunerKind::Representative, &cfg).unwrap();
                cfg.executor = Executor::Parallel;
                let b = detect_ck_through_edge(&g, k, e, PrunerKind::Representative, &cfg).unwrap();
                assert_eq!(a.reject, b.reject);
                assert_eq!(a.outcome.report.per_round, b.outcome.report.per_round);
            }
        }
    }

    /// The single-edge detector must be bit-identical across
    /// collision-scan backends: same rejects, same witness lists (the
    /// exhaustive `all_witnesses`, order included), same traffic.
    #[test]
    fn scan_backends_agree_on_single_edge() {
        use crate::scan::ScanBackend;
        let g = petersen();
        for k in [5usize, 6] {
            for &e in &g.edges()[..6] {
                let ids = (g.id(e.a), g.id(e.b));
                let digest = |out: &SingleRun| {
                    let v: Vec<_> = out
                        .outcome
                        .verdicts
                        .iter()
                        .map(|v| {
                            (v.reject, v.witness.clone(), v.all_witnesses.clone(), v.max_sent_seqs)
                        })
                        .collect();
                    (out.reject, v, out.outcome.report.per_round.clone())
                };
                let mut outs = Vec::new();
                for scan in [
                    ScanBackend::Scalar,
                    ScanBackend::Lanes,
                    ScanBackend::Simd,
                    ScanBackend::Hybrid,
                ] {
                    let cfg =
                        EngineConfig { max_rounds: (k / 2) as u32 + 1, ..EngineConfig::default() };
                    let outcome = Session::builder(&g)
                        .config(cfg)
                        .build()
                        .run(|init| {
                            DetectSingle::with_scan(k, &init, ids, PrunerKind::Representative, scan)
                        })
                        .unwrap();
                    let reject = outcome.verdicts.iter().any(|v| v.reject);
                    outs.push((scan, digest(&SingleRun { reject, outcome })));
                }
                for (scan, d) in &outs[1..] {
                    assert_eq!(d, &outs[0].1, "{scan:?} diverges (k={k}, e={e:?})");
                }
            }
        }
    }

    #[test]
    fn lemma3_bound_holds_on_congestion_worst_cases() {
        use crate::prune::lemma3_bound;
        use ck_graphgen::basic::{fan, spindle};
        for (g, k) in [(spindle(16, 2), 6usize), (spindle(12, 4), 8), (fan(10), 5)] {
            let worst: u128 = (2..=k / 2).map(|t| lemma3_bound(k, t)).max().unwrap_or(1);
            let out = run_edge(&g, k, Edge::new(0, 1));
            assert!(out.reject, "k={k}");
            assert!(
                (out.max_sent_seqs() as u128) <= worst,
                "k={k}: sent {} > Lemma 3 bound {worst}",
                out.max_sent_seqs()
            );
        }
    }

    #[test]
    fn runs_in_half_k_plus_one_rounds() {
        let g = cycle(9);
        let out = run_edge(&g, 9, Edge::new(0, 8));
        assert_eq!(out.outcome.report.rounds, 5); // ⌊9/2⌋ + 1
        assert!(out.reject);
    }
}
