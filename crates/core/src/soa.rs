//! SoA node-state arena for the full tester.
//!
//! PR-2 profiling showed light-degree tester rounds bound by per-node
//! state scatter: the boxed layout gives every [`crate::tester::CkTester`]
//! ~8 small heap buffers, one cache miss each per step. This module packs
//! the same state into a few large buffers owned by one [`SoaArena`]
//! inside [`crate::tester::TesterScratch`]; each node's program becomes a
//! ~40-byte `SoaView` of index-based raw-pointer slices instead of an
//! owner of heap boxes.
//!
//! Layout, by access pattern:
//!
//! * **lane-major (flat, CSR-offset)** — buffers whose per-node size is
//!   exactly the degree, read/written port-wise every round: the Phase-1
//!   `port_rank` stream (one `u64` per directed edge, `0` = unknown since
//!   ranks are ≥ 1) and the absorb pass's `EdgeTag`/payload-location
//!   lanes (at most one Phase-2 message per port per round under
//!   CONGEST). Neighbors in the CSR order are adjacent in memory, so the
//!   parallel executor's contiguous node chunks stream these lanes.
//! * **node-major (header array)** — buffers whose per-node size is
//!   dynamic (Lemma 3 bounds send sets by `(k-t+1)^{t-1}`, astronomically
//!   large near `MAX_K`, so static slabs are ruled out): the
//!   `recv`/`own_sent`/`send_buf` sequence sets keep their demand-grown
//!   `Vec` backings, but the *headers* live contiguously in one arena
//!   array, as do the per-node payload pools (whose `outstanding`
//!   accounting is per-node state in the verdict).
//! * **chunk-shared** — the prune and collision-scan workspaces are
//!   per-round temporaries cleared at the start of every use, so nodes
//!   that provably step on the same executor thread share one: the arena
//!   allocates one per contiguous chunk of the
//!   [`ck_congest::engine::node_step_plan`] snapshot the tester pins on
//!   the run, instead of one per node. These are the two largest
//!   scratch objects, so sharing them is most of the footprint win.
//!
//! A warm `SoaArena::prepare` performs zero heap operations for a
//! same-shape rerun — the contract `tests/alloc_gate.rs` pins down.

use crate::msg::{EdgeTag, SeqBundle, SeqPool};
use crate::prune::SendSetScratch;
use crate::scan::ScanScratch;
use crate::seq::IdSeq;
use ck_congest::graph::Graph;

/// A Phase-2 payload location captured during one absorb pass. Dead
/// outside that pass — the tag lanes are length-reset before every use,
/// so a stale pointer is never dereferenced.
#[derive(Clone, Copy)]
pub(crate) struct BundleLoc(pub(crate) *const SeqBundle);

impl BundleLoc {
    /// Lane fill value; never dereferenced (reads are bounded by the
    /// absorb pass's live length).
    pub(crate) const NULL: BundleLoc = BundleLoc(std::ptr::null());
}

// SAFETY: the pointer is only formed and dereferenced inside a single
// absorb pass on one thread; whenever a program crosses threads
// (between rounds) no live pointer exists.
unsafe impl Send for BundleLoc {}

/// Lane fill value for the tag lane; never read (bounded by the absorb
/// pass's live length).
pub(crate) const TAG_FILL: EdgeTag = EdgeTag { rank: 0, lo: 0, hi: 0 };

/// The arena owning every SoA-layout tester's node state. Lives in
/// [`crate::tester::TesterScratch`] and is recycled across runs; see the
/// module docs for the layout.
#[derive(Default)]
pub struct SoaArena {
    /// CSR port offsets: node `v`'s lane slice is `port_off[v]..port_off[v+1]`.
    port_off: Vec<u32>,
    /// Phase-1 rank per port (lane-major; `0` = unknown, ranks are ≥ 1).
    port_rank: Vec<u64>,
    /// Absorb-pass tag lane (lane-major, capacity = degree exactly).
    tag_tags: Vec<EdgeTag>,
    /// Absorb-pass payload-location lane (lane-major).
    tag_locs: Vec<BundleLoc>,
    /// Deduplicated received sequences (node-major headers).
    recv: Vec<Vec<IdSeq>>,
    /// Last sent sequences, kept for the decision round (node-major).
    own_sent: Vec<Vec<IdSeq>>,
    /// Send set under construction (node-major headers).
    send_buf: Vec<Vec<IdSeq>>,
    /// Per-node payload pools (outstanding accounting is per-node).
    pools: Vec<SeqPool>,
    /// Chunk-shared pruner workspaces (one per executor chunk).
    chunk_prune: Vec<SendSetScratch>,
    /// Chunk-shared collision-scan workspaces (one per executor chunk).
    chunk_scan: Vec<ScanScratch>,
    /// The executor partition's chunk length this arena was prepared for.
    chunk_len: usize,
    /// The base-pointer table, refreshed by [`SoaArena::bases`]; views
    /// hold one pointer to this field instead of an 88-byte copy each,
    /// keeping the engine's per-node slots small.
    bases: SoaBases,
}

impl SoaArena {
    /// Sizes and clears the arena for a run on `g`: CSR offsets rebuilt,
    /// lanes zeroed, node-major headers cleared (backings kept), pools'
    /// accounting reset, and chunk-shared scratch sized for `chunk_len`
    /// elements per executor chunk. The caller passes the chunk length
    /// of the *same* plan snapshot it pins on the run (parallel:
    /// [`ck_congest::engine::node_step_plan`] via
    /// `EngineWorkspace::pin_node_chunk_plan`; sequential: one chunk of
    /// `n`), so the scratch layout and the executing partition agree by
    /// construction. Warm same-shape calls allocate nothing.
    pub(crate) fn prepare(&mut self, g: &Graph, chunk_len: usize) {
        let n = g.n();
        let lanes = g.num_directed_edges();
        self.port_off.clear();
        self.port_off.reserve(n + 1);
        let mut off = 0u32;
        self.port_off.push(0);
        for v in 0..n {
            off += g.degree(v as ck_congest::graph::NodeIndex) as u32;
            self.port_off.push(off);
        }
        self.port_rank.clear();
        self.port_rank.resize(lanes, 0);
        self.tag_tags.clear();
        self.tag_tags.resize(lanes, TAG_FILL);
        self.tag_locs.clear();
        self.tag_locs.resize(lanes, BundleLoc::NULL);
        self.recv.resize_with(n, Vec::new);
        self.own_sent.resize_with(n, Vec::new);
        self.send_buf.resize_with(n, Vec::new);
        self.pools.resize_with(n, SeqPool::default);
        for v in 0..n {
            self.recv[v].clear();
            self.own_sent[v].clear();
            self.send_buf[v].clear();
            self.pools[v].reset_accounting();
        }
        self.chunk_len = chunk_len.max(1);
        let chunks = n.div_ceil(self.chunk_len).max(1);
        self.chunk_prune.resize_with(chunks, SendSetScratch::default);
        self.chunk_scan.resize_with(chunks, ScanScratch::default);
    }

    /// Refreshes and returns the arena's base-pointer table, for
    /// handing index-based views to the node programs. Must be called
    /// after [`SoaArena::prepare`] for the same run; until every view
    /// is dropped the arena must not be accessed through any other path
    /// **and must not move** (the returned pointer targets the `bases`
    /// field in place).
    pub(crate) fn bases(&mut self) -> *const SoaBases {
        self.bases = SoaBases {
            port_off: self.port_off.as_ptr(),
            port_rank: self.port_rank.as_mut_ptr(),
            tag_tags: self.tag_tags.as_mut_ptr(),
            tag_locs: self.tag_locs.as_mut_ptr(),
            recv: self.recv.as_mut_ptr(),
            own_sent: self.own_sent.as_mut_ptr(),
            send_buf: self.send_buf.as_mut_ptr(),
            pools: self.pools.as_mut_ptr(),
            chunk_prune: self.chunk_prune.as_mut_ptr(),
            chunk_scan: self.chunk_scan.as_mut_ptr(),
            chunk_len: self.chunk_len,
        };
        &self.bases
    }
}

/// Raw base pointers into one prepared [`SoaArena`]. Stored once in
/// the arena's `bases` field; each [`SoaView`] carries one pointer to
/// it (always-hot shared cache line) instead of its own copy, so the
/// program factory closure can stamp out views without borrowing the
/// arena and the engine's per-node slots stay small.
#[derive(Clone, Copy)]
pub(crate) struct SoaBases {
    port_off: *const u32,
    port_rank: *mut u64,
    tag_tags: *mut EdgeTag,
    tag_locs: *mut BundleLoc,
    recv: *mut Vec<IdSeq>,
    own_sent: *mut Vec<IdSeq>,
    send_buf: *mut Vec<IdSeq>,
    pools: *mut SeqPool,
    chunk_prune: *mut SendSetScratch,
    chunk_scan: *mut ScanScratch,
    chunk_len: usize,
}

// SAFETY: the pointers target a prepared arena that outlives the run;
// every view derived from them touches only its own node's disjoint
// regions (see `SoaView`'s invariants).
unsafe impl Send for SoaBases {}

impl Default for SoaBases {
    /// Null table for a fresh arena; replaced by [`SoaArena::bases`]
    /// before any view exists.
    fn default() -> Self {
        SoaBases {
            port_off: std::ptr::null(),
            port_rank: std::ptr::null_mut(),
            tag_tags: std::ptr::null_mut(),
            tag_locs: std::ptr::null_mut(),
            recv: std::ptr::null_mut(),
            own_sent: std::ptr::null_mut(),
            send_buf: std::ptr::null_mut(),
            pools: std::ptr::null_mut(),
            chunk_prune: std::ptr::null_mut(),
            chunk_scan: std::ptr::null_mut(),
            chunk_len: 1,
        }
    }
}

/// One node's index-based window into the arena: the SoA replacement
/// for the boxed `NodeScratch`. 24 bytes — one pointer to the arena's
/// base table plus this node's coordinates — so the engine's slot
/// array stays dense.
///
/// # Invariants (uphold all uses of the raw bases)
///
/// * `bases` targets the `bases` field of a prepared [`SoaArena`] that
///   neither moves nor is otherwise accessed until the last view drops
///   ([`SoaArena::bases`]'s contract).
/// * `node < n`, `off..off + deg` is node `node`'s CSR lane range, and
///   `chunk = node / chunk_len` — all fixed at construction from the
///   prepared arena's own tables.
/// * Per-node regions are disjoint across views: lane slices by CSR
///   construction, node-major headers and pools by index.
/// * The chunk-shared prune/scan scratch is aliased only by views whose
///   nodes step on the same executor thread: the tester captures one
///   [`ck_congest::engine::node_step_plan`] snapshot, sizes this
///   arena's scratch from its `chunk_len` (`prepare`), and pins the
///   very same snapshot on the run
///   (`EngineWorkspace::pin_node_chunk_plan`), so the executing
///   partition — contiguous chunks of exactly `chunk_len` nodes — and
///   the scratch layout agree by construction for the whole run, even
///   if the forced-worker state mutates concurrently. The sequential
///   executor is one thread with one chunk. Within a thread, at most
///   one `bufs()` borrow is live at a time (`&mut self` methods of one
///   program).
/// * The arena is dormant for the whole run: no `&`/`&mut` to it is
///   formed between `bases()` and the last program drop.
pub(crate) struct SoaView {
    bases: *const SoaBases,
    node: u32,
    off: u32,
    deg: u32,
    chunk: u32,
}

// SAFETY: a view crossing threads carries only raw pointers whose
// reachable regions are disjoint from every other view's (invariants
// above); the chunk-shared scratch crosses with the whole chunk.
unsafe impl Send for SoaView {}

impl SoaView {
    /// The view of node `index`. Reads the prepared arena's CSR table
    /// through `bases` — callable only between [`SoaArena::bases`] and
    /// the run's first step.
    pub(crate) fn new(bases: *const SoaBases, index: usize) -> Self {
        // SAFETY: `bases` was just returned by `SoaArena::bases` on the
        // prepared arena, `prepare` sized `port_off` to n + 1 entries,
        // and the factory only passes `index < n`.
        let (b, off, end) = unsafe {
            let b = &*bases;
            (b, *b.port_off.add(index), *b.port_off.add(index + 1))
        };
        SoaView {
            bases,
            node: index as u32,
            off,
            deg: end - off,
            chunk: (index / b.chunk_len.max(1)) as u32,
        }
    }

    /// The node's payload-pool `outstanding` counter (verdict field).
    pub(crate) fn pool_outstanding(&self) -> u64 {
        // SAFETY: `pools` has one entry per node and `node < n`; shared
        // read of this node's own pool, no other borrow live (verdict
        // collection is sequential, after stepping).
        unsafe { (*(*self.bases).pools.add(self.node as usize)).outstanding() }
    }

    /// Exclusive borrows of every buffer this node's step touches.
    pub(crate) fn bufs(&mut self) -> crate::tester::BufsRef<'_> {
        // SAFETY: `bases` targets the dormant arena's base table
        // (shared read; only `SoaArena::bases` writes it, before any
        // view exists).
        let b = unsafe { &*self.bases };
        let (off, deg, node, chunk) =
            (self.off as usize, self.deg as usize, self.node as usize, self.chunk as usize);
        // SAFETY: all regions are inside the prepared arena (CSR bounds
        // for the lanes, `node < n` for the headers/pools, chunk count
        // for the scratch); disjointness and non-aliasing per the type's
        // invariants; the borrows' lifetime is tied to `&mut self`, so a
        // second `bufs()` on the same view cannot overlap the first.
        unsafe {
            crate::tester::BufsRef {
                ports: std::slice::from_raw_parts_mut(b.port_rank.add(off), deg),
                tags: std::slice::from_raw_parts_mut(b.tag_tags.add(off), deg),
                locs: std::slice::from_raw_parts_mut(b.tag_locs.add(off), deg),
                recv: &mut *b.recv.add(node),
                own_sent: &mut *b.own_sent.add(node),
                send_buf: &mut *b.send_buf.add(node),
                pool: &mut *b.pools.add(node),
                prune: &mut *b.chunk_prune.add(chunk),
                scan: &mut *b.chunk_scan.add(chunk),
            }
        }
    }
}
