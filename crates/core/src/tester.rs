//! The full distributed `Ck`-freeness tester (Phases 1 + 2, concurrent
//! checks, repetitions) — Theorem 1's algorithm.
//!
//! Per repetition the engine runs `⌊k/2⌋ + 2` rounds:
//!
//! | local round | action |
//! |---|---|
//! | 0 | each edge's owner (smaller-ID endpoint) draws `r(e) ∈ [1, m²]` and ships it |
//! | 1 | every node adopts its min-key incident edge and broadcasts its seed `(myid)` tagged with that edge (paper round 1) |
//! | `t = 2..⌊k/2⌋` | prioritized append-and-forward: keep only traffic of the lowest-keyed edge seen, prune via Algorithm 1, forward (paper round `t`) |
//! | `⌊k/2⌋ + 1` | final decision (Instructions 31–42) |
//!
//! Arbitration follows the paper: a node serves one edge at a time —
//! the lowest `(rank, endpoints)` key it has ever heard of — discarding
//! messages about higher keys and switching when a lower key arrives.
//! With deterministic tie-breaking there is always a unique globally
//! minimal key; Lemma 5 only enters the analysis to make that edge
//! *uniformly distributed*, which is what the ε-far detection bound needs.

use crate::decide::RejectWitness;
use crate::msg::{CkMsg, EdgeTag, SeqPool};
use crate::prune::{build_send_set_scanned, PrunerKind, SendSetScratch};
use crate::rank::{draw_rank, repetitions_for, rounds_per_repetition, total_rounds, RankStream};
use crate::scan::{decide_reject_scanned, ScanBackend, ScanScratch};
use crate::seq::{IdSeq, MAX_K};
use crate::soa::{BundleLoc, SoaArena, SoaView, TAG_FILL};
use ck_congest::engine::{EngineConfig, EngineError, RunOutcome};
use ck_congest::graph::{Graph, NodeId};
use ck_congest::node::{Inbox, NodeInit, Outbox, Program, Status};

/// A [`TesterConfig`] whose parameters lie outside the algorithm's
/// domain. Historically `TesterConfig::new` accepted anything and the
/// run panicked later (deep inside the repetition schedule or the
/// per-node assert); the session builders and
/// [`crate::rank::try_repetitions_for`] surface this error instead.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ConfigError {
    /// `k` outside the supported `3..=MAX_K` range.
    KOutOfRange {
        /// The rejected cycle length.
        k: usize,
    },
    /// `ε` outside `(0, 1)` (including NaN).
    EpsOutOfRange {
        /// The rejected property-testing parameter.
        eps: f64,
    },
    /// An assumed per-message loss rate outside `[0, 1)` (including
    /// NaN): at `loss = 1` no schedule inflation recovers detection.
    LossOutOfRange {
        /// The rejected loss rate.
        loss: f64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::KOutOfRange { k } => {
                write!(f, "k = {k} outside supported range 3..={MAX_K}")
            }
            ConfigError::EpsOutOfRange { eps } => write!(f, "ε must lie in (0,1), got {eps}"),
            ConfigError::LossOutOfRange { loss } => {
                write!(f, "assumed loss must lie in [0,1), got {loss}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Tester parameters.
#[derive(Clone, Copy, Debug)]
pub struct TesterConfig {
    /// Cycle length to test freeness of (`3 ≤ k ≤ 33`).
    pub k: usize,
    /// Property-testing parameter; drives the repetition count.
    pub eps: f64,
    /// Master seed for all Phase-1 randomness.
    pub seed: u64,
    /// Overrides the paper's `⌈(e²/ε)·ln 3⌉` repetition schedule.
    pub repetitions: Option<u32>,
    /// Pruning implementation (identical semantics; see `prune`).
    pub pruner: PrunerKind,
    /// Collision-scan backend for the Phase-2 hot paths (identical
    /// results on every backend; see `scan`). Defaults to the best the
    /// build provides.
    pub scan: ScanBackend,
    /// Early-abort extension (off by default, matching the paper): a
    /// rejecting node floods a 1-bit abort flag; every node halts within
    /// diameter+1 rounds of the first rejection instead of finishing the
    /// repetition schedule. Sound because only genuine rejects originate
    /// the flag; on accepted inputs the cost is unchanged.
    pub early_abort: bool,
    /// Graceful degradation under lossy networks: an assumed per-message
    /// loss rate in `[0, 1)`. When set, the repetition schedule is
    /// inflated by [`crate::rank::loss_inflation`] —
    /// `⌈1/(1−p)^{k·⌊k/2⌋}⌉` — so the expected number of loss-free
    /// repetitions matches the paper's schedule and the ≥ 2/3 detection
    /// bound is recovered. `None` (the default) runs the paper schedule.
    pub assumed_loss: Option<f64>,
    /// Defence against frame corruption: when set, every node-level
    /// rejection's witness cycle is re-validated against the input graph
    /// after the run (length, distinctness, adjacency including the
    /// wraparound edge, and the tagged edge lying on the cycle), and
    /// rejections with invalid witnesses are discarded instead of
    /// reported. On an uncorrupted network this never fires (witnesses
    /// are genuine by Lemma 1); under frame corruption it restores
    /// 1-sidedness: garbage payloads can no longer fabricate a reject.
    pub verify_witnesses: bool,
    /// Per-node state layout of the in-process executors (identical
    /// outputs by construction; `tests/soa_parity.rs` pins it down).
    pub layout: NodeLayout,
}

/// How the in-process executors lay out per-node tester state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum NodeLayout {
    /// Every node owns its ~8 heap buffers ([`NodeScratch`]), recycled
    /// through the scratch pool — the pre-SoA reference layout.
    Boxed,
    /// All node state lives in one [`crate::soa::SoaArena`] owned by the
    /// [`TesterScratch`]; programs are index-based views over a few
    /// large buffers (see the `soa` module docs for the layout).
    #[default]
    Soa,
}

impl TesterConfig {
    /// Standard configuration for testing `Ck`-freeness at parameter `eps`.
    pub fn new(k: usize, eps: f64, seed: u64) -> Self {
        TesterConfig {
            k,
            eps,
            seed,
            repetitions: None,
            pruner: PrunerKind::Representative,
            scan: ScanBackend::auto(),
            early_abort: false,
            assumed_loss: None,
            verify_witnesses: false,
            layout: NodeLayout::default(),
        }
    }

    /// As [`TesterConfig::new`], rejecting out-of-range parameters
    /// instead of deferring the failure to the run.
    pub fn try_new(k: usize, eps: f64, seed: u64) -> Result<Self, ConfigError> {
        let cfg = TesterConfig::new(k, eps, seed);
        cfg.validate()?;
        Ok(cfg)
    }

    /// Checks the parameter domain: `k ∈ 3..=MAX_K`, `ε ∈ (0, 1)`. The
    /// session builders call this so a bad configuration is a
    /// [`ConfigError`] at build time, never a panic mid-schedule.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(3..=MAX_K).contains(&self.k) {
            return Err(ConfigError::KOutOfRange { k: self.k });
        }
        crate::rank::try_repetitions_for(self.eps)?;
        if let Some(loss) = self.assumed_loss {
            crate::rank::try_loss_inflation(self.k, loss)?;
        }
        Ok(())
    }

    /// Repetition count actually used: the paper schedule (or its
    /// override), inflated by [`crate::rank::loss_inflation`] when an
    /// assumed loss rate is set.
    pub fn effective_repetitions(&self) -> u32 {
        let base = self.repetitions.unwrap_or_else(|| repetitions_for(self.eps));
        match self.assumed_loss {
            Some(loss) => base.saturating_mul(crate::rank::loss_inflation(self.k, loss)),
            None => base,
        }
    }
}

/// A recorded rejection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rejection {
    /// Repetition in which the node rejected.
    pub repetition: u32,
    /// The edge whose check assembled the cycle.
    pub tag: EdgeTag,
    /// The witnessing sequence pair.
    pub witness: RejectWitness,
}

/// Per-node output of the full tester.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeVerdict {
    /// True if the node output reject in any repetition.
    pub rejected: bool,
    /// Details of the first rejection, boxed so the common
    /// no-rejection verdict (and the per-node program state embedding
    /// it) stays small — the witness pair alone is ~280 inline bytes,
    /// and the round loop walks one verdict per node per round.
    pub first_rejection: Option<Box<Rejection>>,
    /// Largest number of sequences this node put into one message (the
    /// measured side of Lemma 3).
    pub max_sent_seqs: usize,
    /// Payload-pool buffers taken and never returned when the verdict
    /// was collected — the leak indicator of the pooled `SeqBundle`
    /// cycle. At most 2 for any run length (one per engine arena
    /// generation still parking this node's last broadcasts).
    pub pool_outstanding: u64,
}

/// The recyclable buffers of one boxed-layout [`CkTester`] node:
/// everything that warms up during a run and is worth carrying into the
/// next one. [`CkTester::with_scratch`] adopts a scratch (contents
/// cleared, capacities kept) and [`CkTester::into_scratch`] releases it
/// after the run — the batch runner's per-shard reuse cycle.
#[derive(Default)]
pub struct NodeScratch {
    /// Phase-1 rank per port (`0` = unknown; ranks are ≥ 1).
    port_rank: Vec<u64>,
    own_sent: Vec<IdSeq>,
    recv: Vec<IdSeq>,
    /// Absorb's one-pass tag/payload-location lanes, sized to the
    /// degree (at most one Phase-2 message per port per round). The raw
    /// pointers are produced and consumed inside one absorb pass —
    /// never stored across rounds, only the capacity is.
    tag_tags: Vec<EdgeTag>,
    tag_locs: Vec<BundleLoc>,
    send_buf: Vec<IdSeq>,
    prune: SendSetScratch,
    scan: ScanScratch,
    pool: SeqPool,
}

/// A shard-local pool of [`NodeScratch`]es plus the [`SoaArena`] of the
/// SoA layout, recycled across the jobs of a batch: graph sizes vary
/// between jobs, so the pool simply hands out whatever it has and grows
/// on demand — after the largest job every `take` (and every arena
/// `prepare`) is served warm.
#[derive(Default)]
pub struct TesterScratch {
    nodes: Vec<NodeScratch>,
    /// The SoA layout's node-state arena (empty until the first
    /// SoA-layout run through this scratch).
    soa: SoaArena,
}

impl TesterScratch {
    /// An empty pool.
    pub fn new() -> Self {
        TesterScratch::default()
    }

    /// Takes one node's scratch (fresh if the pool is dry).
    pub fn take(&mut self) -> NodeScratch {
        self.nodes.pop().unwrap_or_default()
    }

    /// Returns one node's scratch to the pool.
    pub fn put(&mut self, scratch: NodeScratch) {
        self.nodes.push(scratch);
    }

    /// Number of scratches currently pooled.
    pub fn pooled(&self) -> usize {
        self.nodes.len()
    }
}

/// Exclusive borrows of every buffer one tester step touches — the
/// layout-neutral view [`TesterBufs`] implementations hand to the
/// shared step logic. Lane buffers (`ports`, `tags`, `locs`) are
/// degree-sized slices; the sequence sets stay growable `Vec`s because
/// Lemma 3's send-set bound is astronomically large near `MAX_K`, which
/// rules out statically sized slabs.
pub(crate) struct BufsRef<'a> {
    /// Phase-1 rank per port (`0` = unknown).
    pub(crate) ports: &'a mut [u64],
    /// Absorb-pass tag lane (capacity = degree).
    pub(crate) tags: &'a mut [EdgeTag],
    /// Absorb-pass payload-location lane.
    pub(crate) locs: &'a mut [BundleLoc],
    /// Deduplicated sequences of the served edge (absorb output).
    pub(crate) recv: &'a mut Vec<IdSeq>,
    /// Last sent sequences, kept for the decision round.
    pub(crate) own_sent: &'a mut Vec<IdSeq>,
    /// The send set under construction.
    pub(crate) send_buf: &'a mut Vec<IdSeq>,
    /// Recycling pool for outgoing bundle backings.
    pub(crate) pool: &'a mut SeqPool,
    /// Pruner workspace (chunk-shared under the SoA layout).
    pub(crate) prune: &'a mut SendSetScratch,
    /// Collision-scan workspace (chunk-shared under the SoA layout).
    pub(crate) scan: &'a mut ScanScratch,
}

/// A per-node buffer provider: the seam between the shared tester logic
/// ([`CkTesterCore`]) and the two layouts — owned boxes
/// ([`NodeScratch`]) or arena views ([`SoaView`]). Both hand out the
/// same [`BufsRef`] shape, so the step code is layout-oblivious and the
/// two layouts are bit-identical by construction.
pub(crate) trait TesterBufs: Send {
    /// Exclusive borrows of the node's buffers for one step.
    fn bufs(&mut self) -> BufsRef<'_>;
    /// The node's payload-pool `outstanding` counter (verdict field).
    fn pool_outstanding(&self) -> u64;
}

impl TesterBufs for NodeScratch {
    fn bufs(&mut self) -> BufsRef<'_> {
        BufsRef {
            ports: &mut self.port_rank,
            tags: &mut self.tag_tags,
            locs: &mut self.tag_locs,
            recv: &mut self.recv,
            own_sent: &mut self.own_sent,
            send_buf: &mut self.send_buf,
            pool: &mut self.pool,
            prune: &mut self.prune,
            scan: &mut self.scan,
        }
    }

    fn pool_outstanding(&self) -> u64 {
        self.pool.outstanding()
    }
}

impl TesterBufs for SoaView {
    fn bufs(&mut self) -> BufsRef<'_> {
        SoaView::bufs(self)
    }

    fn pool_outstanding(&self) -> u64 {
        SoaView::pool_outstanding(self)
    }
}

/// One node of the full tester, generic over the buffer layout `B`.
///
/// Borrows the graph's neighbor-identity row (`'g`) instead of copying
/// it: instantiating `n` testers performs no per-node allocation for
/// the adjacency view. All protocol logic lives here once; the layouts
/// differ only in where `TesterBufs::bufs` points.
pub struct CkTesterCore<'g, B> {
    k: usize,
    half_k: u32,
    rpr: u32,
    reps_total: u32,
    myid: NodeId,
    neighbor_ids: &'g [NodeId],
    m: usize,
    /// Cached Phase-1 rank stream (seed/label/node prefix hoisted out
    /// of the per-repetition loop).
    ranks: RankStream,
    /// Whether this node owns any incident edge (is the smaller-ID
    /// endpoint somewhere). Constant per run; non-owners skip Phase-1
    /// RNG construction entirely, which is unobservable since an
    /// ownerless stream would never be drawn from.
    owns_edges: bool,
    pruner: PrunerKind,
    /// Resolved collision-scan backend (never `Simd` without the
    /// intrinsics compiled).
    scan_backend: ScanBackend,
    early_abort: bool,
    /// Early-abort: an abort flag was seen or originated.
    aborting: bool,
    /// Early-abort: the flag has been forwarded once already.
    abort_forwarded: bool,
    // Per-repetition state.
    cur: Option<EdgeTag>,
    own_sent_tag: Option<EdgeTag>,
    verdict: NodeVerdict,
    bufs: B,
}

/// The boxed-layout tester: each node owns its buffers. The historical
/// type; [`NodeLayout::Soa`] runs the same core over arena views.
pub type CkTester<'g> = CkTesterCore<'g, NodeScratch>;

// The layout seam is deliberately crate-private (its `BufsRef` hands
// out views into arena internals); `B` is only ever instantiated
// in-crate, the generic core is merely nameable outside.
#[allow(private_bounds)]
impl<'g, B: TesterBufs> CkTesterCore<'g, B> {
    /// Shared constructor over an already-sized buffer provider.
    fn init(cfg: &TesterConfig, init: &NodeInit<'g>, bufs: B) -> Self {
        assert!((3..=MAX_K).contains(&cfg.k), "k = {} outside supported range", cfg.k);
        CkTesterCore {
            k: cfg.k,
            half_k: (cfg.k / 2) as u32,
            rpr: rounds_per_repetition(cfg.k),
            reps_total: cfg.effective_repetitions(),
            myid: init.id,
            neighbor_ids: init.neighbor_ids,
            m: init.m,
            ranks: RankStream::new(cfg.seed, init.id),
            owns_edges: init.neighbor_ids.iter().any(|&nb| init.id < nb),
            pruner: cfg.pruner,
            scan_backend: cfg.scan.resolve(),
            early_abort: cfg.early_abort,
            aborting: false,
            abort_forwarded: false,
            cur: None,
            own_sent_tag: None,
            verdict: NodeVerdict::default(),
            bufs,
        }
    }
}

impl<'g> CkTester<'g> {
    /// Builds the boxed-layout program for one node.
    pub fn new(cfg: &TesterConfig, init: &NodeInit<'g>) -> Self {
        CkTester::with_scratch(cfg, init, NodeScratch::default())
    }

    /// As [`CkTester::new`], adopting recycled buffers: `scratch` is
    /// cleared (capacities kept), its lanes sized to the node's degree,
    /// and its payload-pool accounting reset, so the resulting program
    /// is observationally identical to a fresh one — only warmer.
    pub fn with_scratch(cfg: &TesterConfig, init: &NodeInit<'g>, mut scratch: NodeScratch) -> Self {
        let deg = init.degree();
        scratch.port_rank.clear();
        scratch.port_rank.resize(deg, 0);
        scratch.tag_tags.clear();
        scratch.tag_tags.resize(deg, TAG_FILL);
        scratch.tag_locs.clear();
        scratch.tag_locs.resize(deg, BundleLoc::NULL);
        scratch.own_sent.clear();
        scratch.recv.clear();
        scratch.send_buf.clear();
        scratch.pool.reset_accounting();
        CkTesterCore::init(cfg, init, scratch)
    }

    /// Releases the node's recyclable buffers after a run (the verdict
    /// must have been collected first; the engine's reclaim hook runs
    /// after verdict collection by contract).
    pub fn into_scratch(self) -> NodeScratch {
        self.bufs
    }
}

impl<'g> CkTesterCore<'g, SoaView> {
    /// The SoA-layout program for one node: all state lives in the
    /// prepared arena behind `view`; the program itself is a few scalars
    /// plus the ~40-byte view.
    pub(crate) fn over_soa(cfg: &TesterConfig, init: &NodeInit<'g>, view: SoaView) -> Self {
        CkTesterCore::init(cfg, init, view)
    }
}

/// Lowers `cur` to the smallest tag among the incoming Phase-2 messages
/// (the paper's switch rule), then fills `recv` with the deduplicated
/// sequences of the edge now being served. One pass records each
/// message's tag and payload location in the degree-sized lanes (at
/// most one Phase-2 message arrives per port under CONGEST), so the
/// shared broadcast slots (a random read per sender) are dereferenced
/// exactly once; payloads are read straight out of the slots — no
/// clone, no allocation.
fn absorb(
    cur: &mut Option<EdgeTag>,
    tags: &mut [EdgeTag],
    locs: &mut [BundleLoc],
    recv: &mut Vec<IdSeq>,
    inbox: &Inbox<'_, CkMsg>,
) {
    recv.clear();
    let mut len = 0usize;
    for inc in inbox.iter() {
        if let CkMsg::Seqs { tag, seqs } = inc.msg {
            if cur.is_none_or(|c| *tag < c) {
                *cur = Some(*tag);
            }
            tags[len] = *tag;
            locs[len] = BundleLoc(seqs as *const _);
            len += 1;
        }
    }
    let Some(cur) = *cur else { return };
    for i in 0..len {
        if tags[i] == cur {
            // SAFETY: collected from this call's inbox a few lines up;
            // the payloads live until the step returns.
            recv.extend_from_slice(unsafe { (*locs[i].0).as_slice() });
        }
    }
    if recv.len() > 1 {
        recv.sort_unstable();
        recv.dedup();
    }
}

/// Recycles the payload a broadcast evicted from this node's slot (the
/// bundle shipped two rounds earlier, which no receiver can still be
/// reading).
fn recycle(pool: &mut SeqPool, evicted: Option<CkMsg>) {
    if let Some(CkMsg::Seqs { seqs, .. }) = evicted {
        pool.put(seqs);
    }
}

impl<B: TesterBufs> Program for CkTesterCore<'_, B> {
    type Msg = CkMsg;
    type Verdict = NodeVerdict;

    fn step(&mut self, round: u32, inbox: Inbox<'_, CkMsg>, out: &mut Outbox<CkMsg>) -> Status {
        let BufsRef { ports, tags, locs, recv, own_sent, send_buf, pool, prune, scan } =
            self.bufs.bufs();

        // Early-abort extension: adopt an incoming flag, forward it once,
        // halt the round after (the normal protocol below never runs
        // again on this node).
        if self.early_abort {
            if inbox.iter().any(|inc| matches!(inc.msg, CkMsg::Abort)) {
                self.aborting = true;
            }
            if self.aborting {
                if self.abort_forwarded {
                    return Status::Halted;
                }
                self.abort_forwarded = true;
                let evicted = out.broadcast(CkMsg::Abort);
                recycle(pool, evicted);
                return Status::Running;
            }
        }

        let rep = round / self.rpr;
        let local = round % self.rpr;

        if local == 0 {
            // Phase 1: reset the repetition, then owners draw and ship
            // ranks. Non-owners skip RNG construction: their stream is
            // never drawn from, so the skip is unobservable.
            ports.fill(0);
            self.cur = None;
            own_sent.clear();
            self.own_sent_tag = None;
            if self.owns_edges {
                let mut rng = self.ranks.rng(rep);
                for (p, &nb) in self.neighbor_ids.iter().enumerate() {
                    if self.myid < nb {
                        let r = draw_rank(&mut rng, self.m);
                        ports[p] = r;
                        out.send(p as u32, CkMsg::Rank(r));
                    }
                }
            }
            return Status::Running;
        }

        if local == 1 {
            // Phase 1 completion: learn the remaining ranks, adopt the
            // minimum-key incident edge, broadcast the seed (paper rd. 1).
            for inc in inbox.iter() {
                if let CkMsg::Rank(r) = *inc.msg {
                    ports[inc.port as usize] = r;
                }
            }
            let mut best: Option<EdgeTag> = None;
            for (p, &nb) in self.neighbor_ids.iter().enumerate() {
                // On a reliable network every edge has exactly one owner
                // and the rank is always known; under fault injection the
                // rank message may be lost (rank 0 = unknown), in which
                // case this node cannot serve that edge this repetition.
                let rank = ports[p];
                if rank == 0 {
                    continue;
                }
                let tag = EdgeTag::new(rank, self.myid, nb);
                if best.is_none_or(|b| tag < b) {
                    best = Some(tag);
                }
            }
            if let Some(tag) = best {
                self.cur = Some(tag);
                let seed = IdSeq::single(self.myid);
                if self.half_k == 1 {
                    // k = 3: the seed round is the last send round.
                    own_sent.clear();
                    own_sent.push(seed);
                    self.own_sent_tag = Some(tag);
                }
                self.verdict.max_sent_seqs = self.verdict.max_sent_seqs.max(1);
                let bundle = pool.bundle_from(&[seed]);
                let evicted = out.broadcast(CkMsg::Seqs { tag, seqs: bundle });
                recycle(pool, evicted);
            }
            return Status::Running;
        }

        if local <= self.half_k {
            // Paper round t = local: prioritized prune-and-forward,
            // entirely within recycled buffers.
            absorb(&mut self.cur, tags, locs, recv, &inbox);
            build_send_set_scanned(
                self.pruner,
                self.scan_backend,
                recv,
                self.myid,
                self.k,
                local as usize,
                prune,
                scan,
                send_buf,
            );
            if !send_buf.is_empty() {
                self.verdict.max_sent_seqs = self.verdict.max_sent_seqs.max(send_buf.len());
                own_sent.clear();
                own_sent.extend_from_slice(send_buf);
                self.own_sent_tag = self.cur;
                // ck-lint: allow(no-panic, reason = "send_buf is only filled while a served repetition is in flight, which sets cur")
                let tag = self.cur.expect("cur set when R nonempty");
                let bundle = pool.bundle_from(send_buf);
                let evicted = out.broadcast(CkMsg::Seqs { tag, seqs: bundle });
                recycle(pool, evicted);
            } else if local == self.half_k {
                // Nothing contributed at the final send round: stale own
                // sequences must not feed the even-k decision.
                own_sent.clear();
                self.own_sent_tag = None;
            }
            return Status::Running;
        }

        // local == half_k + 1: decision round (Instructions 31–42).
        absorb(&mut self.cur, tags, locs, recv, &inbox);
        let own: &[IdSeq] =
            if self.own_sent_tag == self.cur && self.cur.is_some() { own_sent } else { &[] };
        if !self.verdict.rejected {
            if let Some(w) =
                decide_reject_scanned(self.scan_backend, self.k, self.myid, own, recv, scan)
            {
                self.verdict.rejected = true;
                self.verdict.first_rejection = Some(Box::new(Rejection {
                    repetition: rep,
                    // ck-lint: allow(no-panic, reason = "a rejection can only arise from received sequences, which carry the current tag")
                    tag: self.cur.expect("a decision needs served traffic"),
                    witness: w,
                }));
                if self.early_abort {
                    // Originate the abort flood and linger one round so
                    // it propagates.
                    self.aborting = true;
                    self.abort_forwarded = true;
                    let evicted = out.broadcast(CkMsg::Abort);
                    recycle(pool, evicted);
                    return Status::Running;
                }
            }
        }
        if rep + 1 == self.reps_total {
            Status::Halted
        } else {
            Status::Running
        }
    }

    fn verdict(&self) -> NodeVerdict {
        let mut v = self.verdict.clone();
        v.pool_outstanding = self.bufs.pool_outstanding();
        v
    }

    /// End-of-run drain of the broadcast payloads still parked in the
    /// engine's slots (the last two generations' bundles): back into
    /// the pool they came from, so a scratch-recycled rerun reaches a
    /// steady state where `SeqPool::take` is always served warm.
    fn reclaim_msg(&mut self, msg: CkMsg) {
        recycle(self.bufs.bufs().pool, Some(msg));
    }
}

/// Aggregated network-level result.
#[derive(Clone, Debug, Default)]
pub struct TesterRun {
    /// True if at least one node rejected in some repetition — the
    /// network-level *reject* of distributed property testing.
    pub reject: bool,
    /// Repetitions executed.
    pub repetitions: u32,
    /// Rejections whose witness failed post-run validation and were
    /// discarded (always 0 unless
    /// [`TesterConfig::verify_witnesses`] is set, and 0 on uncorrupted
    /// networks even then).
    pub discarded_witnesses: u32,
    /// Engine outcome (per-round stats + per-node verdicts).
    pub outcome: RunOutcome<NodeVerdict>,
}

impl TesterRun {
    /// All recorded rejections, ordered by node index.
    pub fn rejections(&self) -> Vec<&Rejection> {
        self.outcome.verdicts.iter().filter_map(|v| v.first_rejection.as_deref()).collect()
    }

    /// Largest per-message sequence count over all nodes and rounds.
    pub fn max_sent_seqs(&self) -> usize {
        self.outcome.verdicts.iter().map(|v| v.max_sent_seqs).max().unwrap_or(0)
    }
}

/// The tester engine proper: one full run through a caller-owned
/// engine workspace and tester-scratch pool. This is the single
/// implementation behind [`crate::session::TesterSession`], the batch
/// runner's per-shard hot path, and the deprecated free functions.
/// Arenas, wire-load rows, slot arrays, and per-node tester buffers are
/// recycled from the previous run instead of reallocated; the output is
/// bit-identical to a fresh-state run (a reset workspace and a cleared
/// scratch are observationally fresh).
pub(crate) fn tester_exec(
    g: &Graph,
    cfg: &TesterConfig,
    engine: &EngineConfig,
    ws: &mut ck_congest::engine::EngineWorkspace<CkMsg>,
    scratch: &mut TesterScratch,
) -> Result<TesterRun, EngineError> {
    let mut run = TesterRun::default();
    tester_exec_into(g, cfg, engine, ws, scratch, &mut run)?;
    Ok(run)
}

/// As [`tester_exec`], writing the result into a caller-owned
/// [`TesterRun`] instead of allocating a fresh one. The run's engine
/// outcome is reset (capacities kept) rather than rebuilt, so a warm
/// accept-path rerun under the sequential executor performs zero heap
/// operations — the dynamic contract `ck_lint::alloc_gate` pins down.
/// On error the run's contents are unspecified.
pub(crate) fn tester_exec_into(
    g: &Graph,
    cfg: &TesterConfig,
    engine: &EngineConfig,
    ws: &mut ck_congest::engine::EngineWorkspace<CkMsg>,
    scratch: &mut TesterScratch,
    run: &mut TesterRun,
) -> Result<(), EngineError> {
    let reps = cfg.effective_repetitions();
    let mut ecfg = engine.clone();
    ecfg.max_rounds = total_rounds(cfg.k, reps);
    // The tester is serializable (config + graph rebuild the node
    // programs exactly), so `Distributed` dispatches to the real
    // cross-process coordinator here rather than the generic engine's
    // sequential degradation. Any transport failure degrades to the
    // in-process oracle below — bounded by the net deadlines, recorded
    // in the report — unless fallback is disabled.
    if let ck_congest::engine::Executor::Distributed { workers } = ecfg.executor {
        let w = u32::from(workers.max(1));
        match crate::dist::run_distributed(g, cfg, &ecfg, w) {
            Ok(outcome) => {
                run.outcome = outcome;
                finish_tester_run(g, cfg, reps, run);
                return Ok(());
            }
            Err(crate::dist::DistError::Engine(e)) => return Err(e),
            Err(crate::dist::DistError::Net(ne)) => {
                if !ecfg.net.fallback {
                    return Err(EngineError::Net(ne));
                }
                let recovery_start = std::time::Instant::now();
                let mut seq = ecfg.clone();
                seq.executor = ck_congest::engine::Executor::Sequential;
                tester_exec_inproc(g, cfg, reps, &seq, ws, scratch, run)?;
                let report = &mut run.outcome.report;
                report.executor = "distributed";
                report.threads = w as usize;
                report.net = Some(ck_congest::metrics::NetReport {
                    workers: w,
                    fallback: Some(ne.to_string()),
                    recovery_ms: Some(recovery_start.elapsed().as_millis() as u64),
                    ..ck_congest::metrics::NetReport::default()
                });
                return Ok(());
            }
        }
    }
    tester_exec_inproc(g, cfg, reps, &ecfg, ws, scratch, run)
}

/// The in-process execution path (sequential or parallel executor)
/// behind [`tester_exec_into`] — also the graceful-degradation target
/// of a failed distributed run.
fn tester_exec_inproc(
    g: &Graph,
    cfg: &TesterConfig,
    reps: u32,
    ecfg: &EngineConfig,
    ws: &mut ck_congest::engine::EngineWorkspace<CkMsg>,
    scratch: &mut TesterScratch,
    run: &mut TesterRun,
) -> Result<(), EngineError> {
    let params = ck_congest::message::WireParams::for_graph(g);
    match cfg.layout {
        NodeLayout::Boxed => {
            // The factory and the reclaim hook both feed on the scratch
            // pool; they never run concurrently (setup vs teardown), so
            // a RefCell splits the borrow cleanly.
            let pool = std::cell::RefCell::new(std::mem::take(scratch));
            let result = ws.run_on_into(
                g,
                ecfg,
                &params,
                |init| CkTester::with_scratch(cfg, &init, pool.borrow_mut().take()),
                |prog: CkTester<'_>| pool.borrow_mut().put(prog.into_scratch()),
                &mut run.outcome,
            );
            // Restore the pool before propagating any failure: a shard
            // whose job trips bandwidth enforcement keeps its warm
            // buffers for the remaining jobs (only the failed run's node
            // scratches are gone — the engine drops its programs without
            // the reclaim hook on error).
            *scratch = pool.into_inner();
            result?;
        }
        NodeLayout::Soa => {
            // One node→thread plan snapshot shared between the arena's
            // chunk-shared scratch and the run itself: sizing and
            // pinning off the same capture closes the window where a
            // concurrent forced-worker change could hand two threads
            // aliased scratch (the partition the engine executes is, by
            // construction, the one the scratch was laid out for).
            let parallel = matches!(ecfg.executor, ck_congest::engine::Executor::Parallel);
            if parallel {
                let plan = ck_congest::engine::node_step_plan(g.n());
                scratch.soa.prepare(g, plan.chunk_len);
                ws.pin_node_chunk_plan(plan);
            } else {
                scratch.soa.prepare(g, g.n().max(1));
            }
            // The arena stays dormant behind these Copy base pointers
            // for the whole run (`SoaView`'s invariants); nothing needs
            // reclaiming — every buffer a view touched is already owned
            // by the arena, including the pools `reclaim_msg` drains the
            // parked broadcast payloads into.
            let bases = scratch.soa.bases();
            ws.run_on_into(
                g,
                ecfg,
                &params,
                |init| CkTesterCore::over_soa(cfg, &init, SoaView::new(bases, init.index as usize)),
                |_prog: CkTesterCore<'_, SoaView>| {},
                &mut run.outcome,
            )?;
        }
    }
    finish_tester_run(g, cfg, reps, run);
    Ok(())
}

/// The shared post-run tail: optional witness re-validation, then the
/// network-level verdict — identical for in-process and distributed
/// outcomes, which is what keeps the two bit-comparable. Operates on
/// the run in place so the warm-rerun path stays allocation-free.
fn finish_tester_run(g: &Graph, cfg: &TesterConfig, reps: u32, run: &mut TesterRun) {
    let mut discarded_witnesses = 0u32;
    if cfg.verify_witnesses {
        for v in &mut run.outcome.verdicts {
            let valid = v.first_rejection.as_deref().is_none_or(|r| witness_is_valid(g, cfg.k, r));
            if !valid {
                v.rejected = false;
                v.first_rejection = None;
                discarded_witnesses += 1;
            }
        }
    }
    run.reject = run.outcome.verdicts.iter().any(|v| v.rejected);
    run.repetitions = reps;
    run.discarded_witnesses = discarded_witnesses;
}

/// Post-run witness validation: the recorded cycle must be a genuine
/// `Ck` of the *input graph* passing through the tagged edge. On a
/// reliable network this holds by construction (Lemma 1: every shipped
/// sequence is a real path); under frame corruption a garbage payload
/// can assemble a phantom cycle, and this check is what discards it.
fn witness_is_valid(g: &Graph, k: usize, r: &Rejection) -> bool {
    let ids = r.witness.cycle_ids();
    if ids.len() != k {
        return false;
    }
    // Distinct identities that all exist in the graph.
    let mut seen = ids.clone();
    seen.sort_unstable();
    // ck-lint: allow(index-literal, reason = "windows(2) yields exactly-two-element slices")
    if seen.windows(2).any(|w| w[0] == w[1]) {
        return false;
    }
    let Some(idx): Option<Vec<_>> = ids.iter().map(|&id| g.index_of(id)).collect() else {
        return false;
    };
    // Consecutive adjacency, wraparound included.
    for i in 0..k {
        let next = ids[(i + 1) % k];
        if !g.neighbor_ids(idx[i]).contains(&next) {
            return false;
        }
    }
    // The tagged edge lies on the cycle.
    (0..k).any(|i| {
        let (x, y) = (ids[i], ids[(i + 1) % k]);
        (x.min(y), x.max(y)) == (r.tag.lo, r.tag.hi)
    })
}

/// Runs the full tester on `g`.
///
/// # Panics
/// Panics on an out-of-range `cfg` (use
/// [`crate::session::TesterSession`] for a [`ConfigError`] instead).
/// Validation is strict since the session redesign: `eps` must lie in
/// `(0, 1)` even when a `repetitions` override means the schedule
/// never reads it — previously such configs ran, now they are rejected
/// up front like every other out-of-domain parameter.
#[deprecated(
    since = "0.2.0",
    note = "build a `ck_core::session::TesterSession` — validated config, workspace and \
            scratch reuse by default"
)]
pub fn run_tester(
    g: &Graph,
    cfg: &TesterConfig,
    engine: &EngineConfig,
) -> Result<TesterRun, EngineError> {
    crate::session::TesterSession::from_config(*cfg, engine.clone())
        // ck-lint: allow(no-panic, reason = "deprecated shim preserving the legacy API's historical panic-on-bad-config behavior")
        .unwrap_or_else(|e| panic!("{e}"))
        .test(g)
}

/// As [`run_tester`], executing through a caller-owned engine workspace
/// and tester-scratch pool. A [`crate::session::TesterSession`] owns
/// both and recycles them on every `test`, making the explicit
/// threading unnecessary.
#[deprecated(
    since = "0.2.0",
    note = "a `ck_core::session::TesterSession` owns and recycles the workspace and scratch; \
            use `TesterSession::test`"
)]
pub fn run_tester_reusing(
    g: &Graph,
    cfg: &TesterConfig,
    engine: &EngineConfig,
    ws: &mut ck_congest::engine::EngineWorkspace<CkMsg>,
    scratch: &mut TesterScratch,
) -> Result<TesterRun, EngineError> {
    tester_exec(g, cfg, engine, ws, scratch)
}

/// One-call convenience: tests `Ck`-freeness of `g` at parameter `eps`.
///
/// # Panics
/// Panics on out-of-range `k`/`eps` (use
/// [`crate::session::TesterSession`] for a [`ConfigError`] instead).
pub fn test_ck_freeness(g: &Graph, k: usize, eps: f64, seed: u64) -> TesterRun {
    crate::session::TesterSession::builder(k, eps)
        .seed(seed)
        .build()
        // ck-lint: allow(no-panic, reason = "documented '# Panics' contract for this one-call convenience; TesterSession is the checked path")
        .unwrap_or_else(|e| panic!("{e}"))
        .test(g)
        // ck-lint: allow(no-panic, reason = "default engine config has no faults, no net, no bandwidth cap — the only EngineError sources")
        .expect("default engine config cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ck_congest::engine::Executor;
    use ck_graphgen::basic::{complete_bipartite, cycle, petersen};

    /// The tests' single-run entry: a fresh session per call (shadows
    /// the deprecated free function the glob import would bind).
    fn run_tester(
        g: &Graph,
        cfg: &TesterConfig,
        engine: &EngineConfig,
    ) -> Result<TesterRun, EngineError> {
        crate::session::TesterSession::from_config(*cfg, engine.clone()).unwrap().test(g)
    }
    use ck_graphgen::farness::is_valid_ck;
    use ck_graphgen::planted::{eps_far_instance, matched_free_instance};
    use ck_graphgen::random::{random_tree, randomize_ids};

    #[test]
    fn single_cycle_always_detected() {
        // Every edge of C_k lies on the (unique) C_k, so whichever edge
        // wins arbitration, Phase 2 finds the cycle: detection holds for
        // every seed, not just with probability 2/3.
        for k in 3..=9 {
            for seed in 0..5 {
                let g = cycle(k);
                let cfg = TesterConfig { repetitions: Some(1), ..TesterConfig::new(k, 0.1, seed) };
                let run = run_tester(&g, &cfg, &EngineConfig::default()).unwrap();
                assert!(run.reject, "C{k} must be rejected (seed {seed})");
            }
        }
    }

    #[test]
    fn one_sidedness_on_free_graphs() {
        // Ck-free ⟹ accept with probability exactly 1: no seed, ID
        // labeling, or k may ever produce a reject.
        let mut cases: Vec<(Graph, Vec<usize>)> = vec![
            (random_tree(40, 1), (3..=9).collect()),
            (petersen(), vec![3, 4, 7]),
            (complete_bipartite(5, 5), vec![3, 5, 7, 9]),
        ];
        for k in 3..=8 {
            cases.push((matched_free_instance(40, k), vec![k]));
        }
        for (g, ks) in &cases {
            for &k in ks {
                for seed in 0..4u64 {
                    let g = randomize_ids(g, seed.wrapping_mul(31) + 5);
                    let cfg =
                        TesterConfig { repetitions: Some(2), ..TesterConfig::new(k, 0.2, seed) };
                    let run = run_tester(&g, &cfg, &EngineConfig::default()).unwrap();
                    assert!(!run.reject, "false reject: k={k} seed={seed}");
                }
            }
        }
    }

    #[test]
    fn eps_far_detection_rate_clears_two_thirds() {
        for k in [3usize, 4, 5, 6] {
            let eps = 0.08;
            let inst = eps_far_instance(60, k, eps, 0);
            let trials = 12;
            let mut rejects = 0;
            for seed in 0..trials {
                if test_ck_freeness(&inst.graph, k, eps, seed).reject {
                    rejects += 1;
                }
            }
            assert!(
                rejects * 3 >= trials * 2,
                "k={k}: detection rate {rejects}/{trials} below 2/3"
            );
        }
    }

    #[test]
    fn rejection_witnesses_are_real_cycles() {
        let inst = eps_far_instance(40, 5, 0.05, 2);
        let run = test_ck_freeness(&inst.graph, 5, 0.05, 3);
        assert!(run.reject);
        for r in run.rejections() {
            let ids = r.witness.cycle_ids();
            let idx: Vec<_> = ids.iter().map(|&id| inst.graph.index_of(id).unwrap()).collect();
            assert!(is_valid_ck(&inst.graph, 5, &idx), "bogus witness {ids:?}");
            // The tagged edge lies on the witness cycle.
            let on = (0..5).any(|i| {
                let (x, y) = (ids[i], ids[(i + 1) % 5]);
                (x.min(y), x.max(y)) == (r.tag.lo, r.tag.hi)
            });
            assert!(on, "witness must pass through the tagged edge");
        }
    }

    #[test]
    fn round_budget_matches_schedule() {
        let g = cycle(7);
        let cfg = TesterConfig { repetitions: Some(3), ..TesterConfig::new(7, 0.1, 0) };
        let run = run_tester(&g, &cfg, &EngineConfig::default()).unwrap();
        assert_eq!(run.outcome.report.rounds, 3 * rounds_per_repetition(7));
        assert!(run.outcome.report.all_halted);
    }

    #[test]
    fn executors_agree_on_full_tester() {
        let inst = eps_far_instance(36, 4, 0.05, 1);
        let cfg = TesterConfig { repetitions: Some(2), ..TesterConfig::new(4, 0.05, 9) };
        let mut e = EngineConfig { executor: Executor::Sequential, ..EngineConfig::default() };
        let a = run_tester(&inst.graph, &cfg, &e).unwrap();
        e.executor = Executor::Parallel;
        let b = run_tester(&inst.graph, &cfg, &e).unwrap();
        assert_eq!(a.reject, b.reject);
        assert_eq!(a.outcome.report.per_round, b.outcome.report.per_round);
    }

    #[test]
    fn early_abort_cuts_rounds_on_far_instances() {
        use crate::rank::total_rounds;
        let inst = eps_far_instance(60, 5, 0.05, 0);
        let reps = 150u32;
        let base = TesterConfig { repetitions: Some(reps), ..TesterConfig::new(5, 0.05, 3) };
        let full = run_tester(&inst.graph, &base, &EngineConfig::default()).unwrap();
        assert!(full.reject);
        assert_eq!(full.outcome.report.rounds, total_rounds(5, reps));

        let abort_cfg = TesterConfig { early_abort: true, ..base };
        let fast = run_tester(&inst.graph, &abort_cfg, &EngineConfig::default()).unwrap();
        assert!(fast.reject, "abort must not lose the verdict");
        assert!(
            fast.outcome.report.rounds < full.outcome.report.rounds / 4,
            "expected a large cut: {} vs {}",
            fast.outcome.report.rounds,
            full.outcome.report.rounds
        );
        assert!(fast.outcome.report.all_halted);
    }

    #[test]
    fn early_abort_never_fires_on_free_graphs() {
        use crate::rank::total_rounds;
        let g = matched_free_instance(40, 5);
        let cfg = TesterConfig {
            early_abort: true,
            repetitions: Some(4),
            ..TesterConfig::new(5, 0.1, 7)
        };
        let run = run_tester(&g, &cfg, &EngineConfig::default()).unwrap();
        assert!(!run.reject);
        // Without a reject the schedule runs in full: identical cost.
        assert_eq!(run.outcome.report.rounds, total_rounds(5, 4));
    }

    #[test]
    fn early_abort_preserves_witness_soundness() {
        use ck_graphgen::farness::is_valid_ck;
        let inst = eps_far_instance(40, 4, 0.05, 1);
        let cfg = TesterConfig { early_abort: true, ..TesterConfig::new(4, 0.05, 5) };
        let run = run_tester(&inst.graph, &cfg, &EngineConfig::default()).unwrap();
        assert!(run.reject);
        for r in run.rejections() {
            let idx: Vec<_> =
                r.witness.cycle_ids().iter().map(|&id| inst.graph.index_of(id).unwrap()).collect();
            assert!(is_valid_ck(&inst.graph, 4, &idx));
        }
    }

    /// The pooled bundle cycle must not leak: however many repetitions
    /// run, a node's outstanding pool buffers are bounded by the two
    /// engine arena generations still parking its last broadcasts —
    /// every earlier bundle came back through slot eviction.
    #[test]
    fn payload_pool_never_leaks_across_repetitions() {
        let inst = eps_far_instance(48, 5, 0.05, 2);
        for exec in [Executor::Sequential, Executor::Parallel] {
            for reps in [1u32, 8, 25] {
                let cfg = TesterConfig { repetitions: Some(reps), ..TesterConfig::new(5, 0.05, 3) };
                let e = EngineConfig { executor: exec, ..EngineConfig::default() };
                let run = run_tester(&inst.graph, &cfg, &e).unwrap();
                for (v, verdict) in run.outcome.verdicts.iter().enumerate() {
                    assert!(
                        verdict.pool_outstanding <= 2,
                        "node {v} leaked {} pool buffers over {reps} reps ({exec:?})",
                        verdict.pool_outstanding
                    );
                }
            }
        }
    }

    /// Heavy pooled payloads through the broadcast-slot path must stay
    /// bit-identical across executors even when a nontrivial fault plan
    /// reshapes both Phase-1 rank delivery and Phase-2 bundles.
    #[test]
    fn executors_agree_under_faults_with_pooled_payloads() {
        use ck_congest::fault::FaultPlan;
        let inst = eps_far_instance(40, 5, 0.05, 4);
        let cfg = TesterConfig { repetitions: Some(3), ..TesterConfig::new(5, 0.05, 11) };
        for faults in [
            FaultPlan::none().random_loss(0.15, 9),
            FaultPlan::none().random_loss(0.4, 2).drop_at(1, 0, 0).drop_at(2, 3, 1),
        ] {
            let mut e = EngineConfig {
                executor: Executor::Sequential,
                faults: faults.clone(),
                ..EngineConfig::default()
            };
            let a = run_tester(&inst.graph, &cfg, &e).unwrap();
            e.executor = Executor::Parallel;
            let b = run_tester(&inst.graph, &cfg, &e).unwrap();
            assert_eq!(a.reject, b.reject);
            let digest = |r: &TesterRun| {
                r.outcome
                    .verdicts
                    .iter()
                    .map(|v| {
                        (v.rejected, v.max_sent_seqs, v.first_rejection.as_ref().map(|x| x.tag))
                    })
                    .collect::<Vec<_>>()
            };
            assert_eq!(digest(&a), digest(&b));
            assert_eq!(a.outcome.report.per_round, b.outcome.report.per_round);
            assert_eq!(a.outcome.report.rounds, b.outcome.report.rounds);
        }
    }

    /// Every collision-scan backend must produce bit-identical full
    /// runs — verdicts, witnesses, and wire statistics — on odd and
    /// even k (the two decision shapes), the `Simd` request resolving
    /// to the portable kernels when not compiled.
    #[test]
    fn scan_backends_agree_on_full_tester() {
        for k in [4usize, 5] {
            let inst = eps_far_instance(48, k, 0.05, 2);
            let digest = |r: &TesterRun| {
                (
                    r.reject,
                    r.outcome.verdicts.clone(),
                    r.outcome.report.per_round.clone(),
                    r.outcome.report.rounds,
                )
            };
            let mut runs = Vec::new();
            for scan in
                [ScanBackend::Scalar, ScanBackend::Lanes, ScanBackend::Simd, ScanBackend::Hybrid]
            {
                let cfg =
                    TesterConfig { repetitions: Some(2), scan, ..TesterConfig::new(k, 0.05, 7) };
                let run = run_tester(&inst.graph, &cfg, &EngineConfig::default()).unwrap();
                assert!(run.reject, "planted instance must reject (k={k}, {scan:?})");
                runs.push((scan, digest(&run)));
            }
            for (scan, d) in &runs[1..] {
                assert_eq!(d, &runs[0].1, "backend {scan:?} diverges from scalar (k={k})");
            }
        }
    }

    #[test]
    fn witness_verification_is_a_noop_on_honest_runs() {
        let inst = eps_far_instance(40, 5, 0.05, 2);
        let base = TesterConfig { repetitions: Some(3), ..TesterConfig::new(5, 0.05, 3) };
        let plain = run_tester(&inst.graph, &base, &EngineConfig::default()).unwrap();
        let verified = run_tester(
            &inst.graph,
            &TesterConfig { verify_witnesses: true, ..base },
            &EngineConfig::default(),
        )
        .unwrap();
        assert_eq!(plain.reject, verified.reject);
        assert_eq!(verified.discarded_witnesses, 0, "honest witnesses must all survive");
        assert_eq!(plain.outcome.verdicts, verified.outcome.verdicts);
    }

    #[test]
    fn corruption_cannot_fabricate_rejects_under_verification() {
        use ck_congest::fault::FaultPlan;
        // Ck-free graphs under aggressive frame corruption: garbage
        // payloads reach the decision logic, but with witness
        // verification on, the network-level verdict stays accept.
        for k in [4usize, 5] {
            let g = matched_free_instance(36, k);
            for seed in 0..3u64 {
                let engine = EngineConfig {
                    faults: FaultPlan::none().corrupt_frames(0.5, seed * 13 + 1),
                    ..EngineConfig::default()
                };
                let cfg = TesterConfig {
                    repetitions: Some(3),
                    verify_witnesses: true,
                    ..TesterConfig::new(k, 0.1, seed)
                };
                let run = run_tester(&g, &cfg, &engine).unwrap();
                assert!(!run.reject, "fabricated reject survived verification: k={k} seed={seed}");
            }
        }
    }

    #[test]
    fn assumed_loss_inflates_the_executed_schedule() {
        let g = cycle(4);
        let cfg = TesterConfig {
            repetitions: Some(2),
            assumed_loss: Some(0.3),
            ..TesterConfig::new(4, 0.1, 0)
        };
        // ⌈1/0.7⁸⌉ = 18 → 36 repetitions actually run.
        assert_eq!(cfg.effective_repetitions(), 36);
        let run = run_tester(&g, &cfg, &EngineConfig::default()).unwrap();
        assert_eq!(run.repetitions, 36);
        assert!(run.reject);
    }

    #[test]
    fn index_relabeling_does_not_change_id_keyed_randomness() {
        // Ranks key on node identity: relabeling indices but keeping IDs
        // and topology produces the same verdict.
        let g = cycle(6);
        let cfg = TesterConfig { repetitions: Some(1), ..TesterConfig::new(6, 0.1, 4) };
        let a = run_tester(&g, &cfg, &EngineConfig::default()).unwrap();
        let b = run_tester(&g, &cfg, &EngineConfig::default()).unwrap();
        assert_eq!(a.reject, b.reject);
        assert_eq!(a.outcome.report.total_messages(), b.outcome.report.total_messages());
    }
}
