//! `CkMsg` codec round-trip property tests: for every variant —
//! including pooled `Seqs` bundles built through the `SeqPool` cycle —
//! `decode(encode(msg))` is the identity and the encoded length in
//! bits equals `wire_bits` exactly, so the engine's wire accounting is
//! backed by real bytes.

use ck_congest::message::{BitReader, CodecError, WireCodec, WireMessage, WireParams};
use ck_core::msg::{CkCodec, CkMsg, EdgeTag, SeqBundle, SeqPool};
use ck_core::seq::{IdSeq, MAX_SEQ_LEN};
use proptest::prelude::*;

/// Wire parameters of the kind `WireParams::for_graph` derives: id and
/// rank widths in the ranges real graphs produce.
fn arb_params() -> impl Strategy<Value = WireParams> {
    (1u32..=24, 1u32..=40).prop_map(|(id_bits, rank_bits)| WireParams {
        n: 1usize << id_bits.min(16),
        m: 1usize << (rank_bits / 2).min(16),
        id_bits,
        rank_bits,
    })
}

/// A duplicate-free sequence of `len` IDs that fit `id_bits`.
fn arb_seq(len: usize, id_bits: u32, salt: u64) -> IdSeq {
    let mask = if id_bits >= 64 { u64::MAX } else { (1u64 << id_bits) - 1 };
    let mut ids = Vec::with_capacity(len);
    let mut x = salt;
    while ids.len() < len {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let id = (x >> 7) & mask;
        if !ids.contains(&id) {
            ids.push(id);
        }
    }
    IdSeq::from_slice(&ids)
}

fn max_of(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    /// Rank and Abort frames: identity round-trip at exactly wire_bits.
    #[test]
    fn rank_and_abort_roundtrip(params in arb_params(), r in any::<u64>()) {
        let codec = CkCodec::new(1);
        let rank = CkMsg::Rank(r & max_of(params.rank_bits));
        for msg in [&rank, &CkMsg::Abort] {
            let buf = codec.encode_to_buf(msg, &params).unwrap();
            prop_assert_eq!(buf.len_bits(), msg.wire_bits(&params), "{:?}", msg);
            prop_assert_eq!(buf.as_bytes().len() as u64, buf.len_bits().div_ceil(8));
            let back = codec.decode(&params, &mut buf.reader()).unwrap();
            prop_assert_eq!(&back, msg);
        }
    }

    /// Seqs frames — bundles built through the pooled `SeqPool` cycle,
    /// every count 0..=8 and sequence length 1..=MAX_SEQ_LEN: identity
    /// round-trip at exactly wire_bits, including recycled buffers.
    #[test]
    fn pooled_seqs_roundtrip(
        params in arb_params(),
        seq_len in 1usize..=MAX_SEQ_LEN,
        count in 0usize..=8,
        rank in any::<u64>(),
        salt in any::<u64>(),
    ) {
        // Sequence lengths are bounded by the ID space: `seq_len`
        // distinct IDs need at least that many representable values.
        let id_space = max_of(params.id_bits);
        prop_assume!(id_space >= seq_len as u64 + 2);
        let codec = CkCodec::new(seq_len);
        let lo = salt % id_space.min(1 << 20);
        let hi = lo + 1 + (salt >> 40) % 7;
        prop_assume!(hi <= id_space);
        let tag = EdgeTag::new(rank & max_of(params.rank_bits), lo, hi);

        let mut pool = SeqPool::new();
        // Two pool generations: the second bundle reuses the first's
        // returned backing, proving recycled buffers encode identically.
        for generation in 0..2 {
            let seqs: Vec<IdSeq> = (0..count)
                .map(|i| arb_seq(seq_len, params.id_bits, salt ^ (i as u64) << 17))
                .collect();
            let bundle = pool.bundle_from(&seqs);
            let msg = CkMsg::Seqs { tag, seqs: bundle };
            let buf = codec.encode_to_buf(&msg, &params).unwrap();
            prop_assert_eq!(
                buf.len_bits(),
                msg.wire_bits(&params),
                "generation {} count {}",
                generation,
                count
            );
            let back = codec.decode(&params, &mut buf.reader()).unwrap();
            prop_assert_eq!(&back, &msg);
            // Return the pooled backing, as the tester's broadcast-slot
            // eviction cycle does (the decoded copy owns a fresh Vec).
            match msg {
                CkMsg::Seqs { seqs, .. } => pool.put(seqs),
                _ => unreachable!(),
            }
        }
        prop_assert_eq!(pool.outstanding(), 0, "codec must not leak pooled buffers");
    }

    /// Truncating any frame by one or more bits is a decode error,
    /// never a wrong message.
    #[test]
    fn truncated_frames_are_rejected(
        params in arb_params(),
        seq_len in 1usize..=4,
        count in 1usize..=4,
        cut in 1u64..8,
    ) {
        prop_assume!(max_of(params.id_bits) >= seq_len as u64 + 2);
        let codec = CkCodec::new(seq_len);
        let seqs: Vec<IdSeq> =
            (0..count).map(|i| arb_seq(seq_len, params.id_bits, 99 + i as u64)).collect();
        let msg = CkMsg::Seqs { tag: EdgeTag::new(1, 0, 1), seqs: SeqBundle(seqs) };
        let buf = codec.encode_to_buf(&msg, &params).unwrap();
        prop_assume!(cut < buf.len_bits());
        let mut short = BitReader::new(buf.as_bytes(), buf.len_bits() - cut);
        match codec.decode(&params, &mut short) {
            Err(_) => {}
            // A truncated Seqs frame whose length still matches some
            // smaller count decodes to a *different* message — that is
            // a framing-layer concern; the codec must never return the
            // original under a wrong frame.
            Ok(back) => prop_assert_ne!(back, msg),
        }
    }
}

/// The protocol shapes the tester actually ships: seed bundles (one
/// single-ID sequence) and final-round bundles at the Lemma-3 bound,
/// through graph-derived parameters.
#[test]
fn protocol_shaped_frames_roundtrip() {
    use ck_graphgen::planted::eps_far_instance;
    let inst = eps_far_instance(40, 5, 0.1, 1);
    let params = WireParams::for_graph(&inst.graph);
    // Seed round: every node ships `(myid)` tagged with its served edge.
    let seed_codec = CkCodec::new(1);
    for v in 0..inst.graph.n().min(8) {
        let id = inst.graph.ids()[v];
        let other = inst.graph.ids()[(v + 1) % inst.graph.n()];
        let tag = EdgeTag::new(42 + v as u64, id, other);
        let msg = CkMsg::Seqs { tag, seqs: SeqBundle(vec![IdSeq::single(id)]) };
        let buf = seed_codec.encode_to_buf(&msg, &params).unwrap();
        assert_eq!(buf.len_bits(), msg.wire_bits(&params));
        assert_eq!(seed_codec.decode(&params, &mut buf.reader()).unwrap(), msg);
    }
    // A paper-round-2 bundle at k = 5 (length-2 sequences).
    let codec = CkCodec::new(2);
    let tag = EdgeTag::new(7, 0, 3);
    let msg = CkMsg::Seqs {
        tag,
        seqs: SeqBundle(vec![
            IdSeq::from_slice(&[0, 9]),
            IdSeq::from_slice(&[3, 11]),
            IdSeq::from_slice(&[5, 2]),
        ]),
    };
    let buf = codec.encode_to_buf(&msg, &params).unwrap();
    assert_eq!(buf.len_bits(), msg.wire_bits(&params));
    assert_eq!(codec.decode(&params, &mut buf.reader()).unwrap(), msg);
    // Wrong-context decode (round 3's codec on round 2's frame) errors.
    assert!(matches!(
        CkCodec::new(3).decode(&params, &mut buf.reader()),
        Err(CodecError::Invalid(_))
    ));
}
