//! Bit-identity and fault-tolerance tests of the distributed tester
//! executor: the in-process sequential run is the oracle, and a
//! distributed run — any worker count, any composed fault plan — must
//! reproduce its verdicts, round statistics, and fault accounting
//! bit-for-bit. Under chaos (mid-frame cuts, worker death, hard
//! disconnects) every run must still terminate within the configured
//! deadlines, either with the correct result after graceful
//! degradation or with a typed `NetError` — never a hang.

use std::time::{Duration, Instant};

use ck_congest::engine::{BandwidthPolicy, EngineConfig, EngineError, Executor};
use ck_congest::fault::FaultPlan;
use ck_congest::graph::Graph;
use ck_congest::net::chaos::ChaosPlan;
use ck_congest::net::NetOptions;
use ck_core::session::TesterSession;
use ck_core::tester::{TesterConfig, TesterRun};
use ck_graphgen::basic::{complete, cycle, path};
use ck_graphgen::behrend::behrend_ck_instance;
use ck_graphgen::planted::{eps_far_instance, matched_free_instance};
use ck_graphgen::random::gnp;

/// Tight deadlines so failure paths resolve in test time; generous
/// enough that healthy loopback runs never trip them.
fn fast_net() -> NetOptions {
    NetOptions {
        connect_timeout_ms: 5_000,
        round_deadline_ms: 5_000,
        heartbeat_ms: 20,
        ..NetOptions::default()
    }
}

fn run_with(g: &Graph, cfg: TesterConfig, engine: EngineConfig) -> TesterRun {
    TesterSession::from_config(cfg, engine).unwrap().test(g).unwrap()
}

/// Runs the sequential oracle and a `workers`-way distributed run and
/// asserts full bit-identity of everything executor-independent.
fn assert_bit_identical(g: &Graph, cfg: TesterConfig, faults: FaultPlan, workers: u16) {
    let seq_engine = EngineConfig {
        executor: Executor::Sequential,
        faults: faults.clone(),
        ..EngineConfig::default()
    };
    let dist_engine = EngineConfig {
        executor: Executor::Distributed { workers },
        faults,
        net: fast_net(),
        ..EngineConfig::default()
    };
    let seq = run_with(g, cfg, seq_engine);
    let dist = run_with(g, cfg, dist_engine);

    let net = dist.outcome.report.net.as_ref().expect("distributed run records a net block");
    assert!(
        net.completed_distributed(),
        "healthy loopback run must not degrade: {:?}",
        net.fallback
    );
    assert_eq!(dist.reject, seq.reject, "network verdict");
    assert_eq!(dist.repetitions, seq.repetitions);
    assert_eq!(dist.discarded_witnesses, seq.discarded_witnesses);
    assert_eq!(dist.outcome.verdicts, seq.outcome.verdicts, "per-node verdicts");
    assert_eq!(dist.outcome.report.rounds, seq.outcome.report.rounds);
    assert_eq!(dist.outcome.report.all_halted, seq.outcome.report.all_halted);
    assert_eq!(dist.outcome.report.per_round, seq.outcome.report.per_round, "round stats");
    assert_eq!(dist.outcome.report.faults, seq.outcome.report.faults, "fault accounting");
}

#[test]
fn planted_instance_bit_identical_across_worker_counts() {
    let inst = eps_far_instance(36, 5, 0.12, 11);
    let mut cfg = TesterConfig::new(5, 0.2, 7);
    cfg.repetitions = Some(2);
    for workers in [1u16, 2, 3, 4] {
        assert_bit_identical(&inst.graph, cfg, FaultPlan::none(), workers);
    }
}

#[test]
fn free_instance_bit_identical() {
    let g = matched_free_instance(30, 4);
    let mut cfg = TesterConfig::new(4, 0.25, 3);
    cfg.repetitions = Some(2);
    assert_bit_identical(&g, cfg, FaultPlan::none(), 3);
}

#[test]
fn behrend_instance_bit_identical() {
    let inst = behrend_ck_instance(4, 48);
    let mut cfg = TesterConfig::new(4, 0.3, 5);
    cfg.repetitions = Some(2);
    for workers in [2u16, 5] {
        assert_bit_identical(&inst.graph, cfg, FaultPlan::none(), workers);
    }
}

#[test]
fn composed_fault_plan_bit_identical() {
    // FaultPlan v2 in one plan: explicit drop, Bernoulli loss, a
    // crash, a cut link, burst loss, and frame corruption — the
    // distributed workers must replay every coin bit-identically.
    let inst = eps_far_instance(30, 5, 0.12, 23);
    let plan = FaultPlan::none()
        .drop_at(1, 2, 0)
        .random_loss(0.05, 99)
        .crash(3, 4)
        .cut_link(0, 1)
        .burst_loss(0.08, 0.5, 41)
        .corrupt_frames(0.04, 17);
    let mut cfg = TesterConfig::new(5, 0.2, 13);
    cfg.repetitions = Some(2);
    cfg.verify_witnesses = true;
    for workers in [2u16, 4] {
        assert_bit_identical(&inst.graph, cfg, plan.clone(), workers);
    }
}

#[test]
fn early_abort_bit_identical() {
    let inst = eps_far_instance(32, 4, 0.15, 31);
    let mut cfg = TesterConfig::new(4, 0.2, 19);
    cfg.repetitions = Some(3);
    cfg.early_abort = true;
    assert_bit_identical(&inst.graph, cfg, FaultPlan::none(), 3);
}

#[test]
fn enforced_bandwidth_violation_is_the_oracle_error() {
    // A budget below any real message: both executors must fail with
    // the *same* typed violation (round, node — the distributed merge
    // keeps the leftmost), not a transport error.
    let g = cycle(12);
    let mut cfg = TesterConfig::new(4, 0.3, 2);
    cfg.repetitions = Some(1);
    let seq = TesterSession::from_config(
        cfg,
        EngineConfig {
            executor: Executor::Sequential,
            bandwidth: BandwidthPolicy::Enforce { bits: 1 },
            ..EngineConfig::default()
        },
    )
    .unwrap()
    .test(&g)
    .unwrap_err();
    let dist = TesterSession::from_config(
        cfg,
        EngineConfig {
            executor: Executor::Distributed { workers: 3 },
            bandwidth: BandwidthPolicy::Enforce { bits: 1 },
            net: fast_net(),
            ..EngineConfig::default()
        },
    )
    .unwrap()
    .test(&g)
    .unwrap_err();
    let (
        EngineError::BandwidthExceeded { round: ra, node: na, port: pa, bits: ba, limit: la },
        EngineError::BandwidthExceeded { round: rb, node: nb, port: pb, bits: bb, limit: lb },
    ) = (&seq, &dist)
    else {
        panic!("expected BandwidthExceeded from both executors, got {seq:?} / {dist:?}");
    };
    assert_eq!((ra, na, pa, ba, la), (rb, nb, pb, bb, lb));
}

// ---------------------------------------------------------------------------
// Barrier edge cases.
// ---------------------------------------------------------------------------

#[test]
fn single_worker_partition_is_identical_and_routes_nothing() {
    let inst = eps_far_instance(24, 4, 0.15, 5);
    let mut cfg = TesterConfig::new(4, 0.25, 9);
    cfg.repetitions = Some(2);
    let run = run_with(
        &inst.graph,
        cfg,
        EngineConfig {
            executor: Executor::Distributed { workers: 1 },
            net: fast_net(),
            ..EngineConfig::default()
        },
    );
    let net = run.outcome.report.net.as_ref().unwrap();
    assert!(net.completed_distributed());
    // One partition owns every node: zero cross-partition messages,
    // but the barrier still seals every round.
    assert_eq!(net.frames_routed, 0);
    assert_eq!(net.frame_bytes, 0);
    assert_eq!(net.barriers, u64::from(run.outcome.report.rounds));
    assert_bit_identical(&inst.graph, cfg, FaultPlan::none(), 1);
}

#[test]
fn partition_aligned_components_route_zero_frames() {
    // Two cliques on disjoint contiguous index ranges, two workers:
    // the cut between partitions carries no edges, so every round's
    // cross-partition traffic is empty and the barrier protocol alone
    // keeps the workers in lock-step.
    let mut b = ck_congest::graph::GraphBuilder::new(8);
    for a in 0..4u32 {
        for c in (a + 1)..4 {
            b.edge(a, c);
        }
    }
    for a in 4..8u32 {
        for c in (a + 1)..8 {
            b.edge(a, c);
        }
    }
    let g = b.build().unwrap();
    let mut cfg = TesterConfig::new(3, 0.3, 4);
    cfg.repetitions = Some(1);
    let run = run_with(
        &g,
        cfg,
        EngineConfig {
            executor: Executor::Distributed { workers: 2 },
            net: fast_net(),
            ..EngineConfig::default()
        },
    );
    assert!(run.reject, "a K4 contains C3");
    let net = run.outcome.report.net.as_ref().unwrap();
    assert!(net.completed_distributed());
    assert_eq!(net.frames_routed, 0, "no edge crosses the partition cut");
    assert_bit_identical(&g, cfg, FaultPlan::none(), 2);
}

#[test]
fn more_workers_than_nodes_leaves_empty_partitions_in_lockstep() {
    let g = cycle(5);
    let mut cfg = TesterConfig::new(5, 0.3, 6);
    cfg.repetitions = Some(2);
    // 9 workers over 5 nodes: at least 4 partitions are empty yet must
    // ack every barrier and report empty verdict slices.
    assert_bit_identical(&g, cfg, FaultPlan::none(), 9);
}

#[test]
fn warm_session_restarts_cleanly() {
    // A coordinator restart on a warm `TesterSession`: the same
    // session object spins up a fresh worker fleet per test, and a
    // degraded run must not poison the next one.
    let inst = eps_far_instance(24, 4, 0.15, 8);
    let free = matched_free_instance(24, 4);
    let mut cfg = TesterConfig::new(4, 0.25, 12);
    cfg.repetitions = Some(2);
    let mut session = TesterSession::from_config(
        cfg,
        EngineConfig {
            executor: Executor::Distributed { workers: 2 },
            net: fast_net(),
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let first = session.test(&inst.graph).unwrap();
    assert!(first.reject);
    assert!(first.outcome.report.net.as_ref().unwrap().completed_distributed());
    let second = session.test(&free).unwrap();
    assert!(!second.reject);
    assert!(second.outcome.report.net.as_ref().unwrap().completed_distributed());
    // Third run reproduces the first bit-for-bit on the warm session.
    let third = session.test(&inst.graph).unwrap();
    assert_eq!(third.outcome.verdicts, first.outcome.verdicts);
    assert_eq!(third.outcome.report.per_round, first.outcome.report.per_round);
}

// ---------------------------------------------------------------------------
// Chaos: every failure terminates in bounded time, typed or recovered.
// ---------------------------------------------------------------------------

/// Deadline bound for every chaos run: generous against CI jitter,
/// but a hang (the one forbidden outcome) would blow far past it.
const CHAOS_BUDGET: Duration = Duration::from_secs(30);

fn chaos_net(plan: ChaosPlan) -> NetOptions {
    NetOptions {
        connect_timeout_ms: 3_000,
        round_deadline_ms: 1_500,
        heartbeat_ms: 20,
        chaos: Some(plan),
        ..NetOptions::default()
    }
}

fn assert_degraded_matches_oracle(g: &Graph, cfg: TesterConfig, net: NetOptions) {
    let started = Instant::now();
    let run = run_with(
        g,
        cfg,
        EngineConfig {
            executor: Executor::Distributed { workers: 2 },
            net,
            ..EngineConfig::default()
        },
    );
    let elapsed = started.elapsed();
    assert!(elapsed < CHAOS_BUDGET, "chaos run exceeded the time budget: {elapsed:?}");
    let report_net = run.outcome.report.net.as_ref().expect("net block present");
    assert!(report_net.fallback.is_some(), "the injected fault must be detected and recorded");
    assert!(report_net.recovery_ms.is_some(), "fallback records its recovery latency");
    // The degraded run *is* the oracle: verdicts match a plain
    // sequential run exactly.
    let oracle = run_with(
        g,
        cfg,
        EngineConfig { executor: Executor::Sequential, ..EngineConfig::default() },
    );
    assert_eq!(run.reject, oracle.reject);
    assert_eq!(run.outcome.verdicts, oracle.outcome.verdicts);
}

#[test]
fn mid_frame_truncation_degrades_gracefully() {
    let inst = eps_far_instance(24, 4, 0.15, 14);
    let mut cfg = TesterConfig::new(4, 0.25, 21);
    cfg.repetitions = Some(2);
    // The coordinator's link to worker 0 dies mid-frame after 40
    // bytes — inside the Spec frame, the rudest possible cut.
    let plan = ChaosPlan { truncate_after_bytes: Some(40), ..ChaosPlan::for_worker(0) };
    assert_degraded_matches_oracle(&inst.graph, cfg, chaos_net(plan));
}

#[test]
fn worker_abort_mid_run_degrades_gracefully() {
    let inst = eps_far_instance(24, 4, 0.15, 15);
    let mut cfg = TesterConfig::new(4, 0.25, 22);
    cfg.repetitions = Some(3);
    // Worker 1 dies (link drops without a goodbye) when told to run
    // round 2 — crash-stop mid-protocol.
    let plan = ChaosPlan { abort_at_round: Some(2), ..ChaosPlan::for_worker(1) };
    assert_degraded_matches_oracle(&inst.graph, cfg, chaos_net(plan));
}

#[test]
fn coordinator_side_disconnect_degrades_gracefully() {
    let inst = eps_far_instance(24, 4, 0.15, 16);
    let mut cfg = TesterConfig::new(4, 0.25, 23);
    cfg.repetitions = Some(3);
    let plan = ChaosPlan { disconnect_at_round: Some(1), ..ChaosPlan::for_worker(0) };
    assert_degraded_matches_oracle(&inst.graph, cfg, chaos_net(plan));
}

#[test]
fn kill_worker_degrades_gracefully() {
    let inst = eps_far_instance(24, 4, 0.15, 17);
    let mut cfg = TesterConfig::new(4, 0.25, 24);
    cfg.repetitions = Some(3);
    let net = NetOptions {
        connect_timeout_ms: 3_000,
        round_deadline_ms: 1_500,
        heartbeat_ms: 20,
        kill_worker: Some((1, 2)),
        ..NetOptions::default()
    };
    assert_degraded_matches_oracle(&inst.graph, cfg, net);
}

#[test]
fn fallback_disabled_surfaces_the_typed_net_error() {
    let inst = eps_far_instance(24, 4, 0.15, 18);
    let mut cfg = TesterConfig::new(4, 0.25, 25);
    cfg.repetitions = Some(2);
    let plan = ChaosPlan { abort_at_round: Some(1), ..ChaosPlan::for_worker(0) };
    let net = NetOptions { fallback: false, ..chaos_net(plan) };
    let started = Instant::now();
    let err = TesterSession::from_config(
        cfg,
        EngineConfig {
            executor: Executor::Distributed { workers: 2 },
            net,
            ..EngineConfig::default()
        },
    )
    .unwrap()
    .test(&inst.graph)
    .unwrap_err();
    assert!(started.elapsed() < CHAOS_BUDGET);
    let EngineError::Net(ne) = err else {
        panic!("expected a typed NetError, got {err:?}");
    };
    // The lost worker is identified by index, bounded by the deadline.
    let s = ne.to_string();
    assert!(s.contains("worker 0"), "error names the lost worker: {s}");
}

// ---------------------------------------------------------------------------
// Randomized bit-identity sweep (proptest).
// ---------------------------------------------------------------------------

mod sweep {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

        /// Random graphs, worker counts, and composed fault plans:
        /// the distributed run reproduces the sequential oracle
        /// bit-for-bit every time.
        #[test]
        fn distributed_equals_sequential(
            n in 8usize..24,
            p_pct in 15u32..45,
            gseed in 0u64..1000,
            k in 3usize..6,
            workers in 1u16..5,
            drop_pct in 0u32..10,
            corrupt in 0u8..2,
        ) {
            let g = gnp(n, f64::from(p_pct) / 100.0, gseed);
            let corrupt = corrupt == 1;
            let mut plan = FaultPlan::none();
            if drop_pct > 1 {
                plan = plan.random_loss(f64::from(drop_pct) / 100.0, gseed ^ 0x5bd1e995);
            }
            if corrupt {
                plan = plan.corrupt_frames(0.05, gseed.wrapping_add(7));
            }
            let mut cfg = TesterConfig::new(k, 0.3, gseed ^ 0xabcd);
            cfg.repetitions = Some(1);
            cfg.verify_witnesses = corrupt;
            assert_bit_identical(&g, cfg, plan, workers);
        }
    }
}

// ---------------------------------------------------------------------------
// Structural sanity on simple topologies.
// ---------------------------------------------------------------------------

#[test]
fn simple_topologies_bit_identical() {
    let mut cfg = TesterConfig::new(4, 0.3, 3);
    cfg.repetitions = Some(1);
    for g in [cycle(8), path(9), complete(6)] {
        assert_bit_identical(&g, cfg, FaultPlan::none(), 3);
    }
}
