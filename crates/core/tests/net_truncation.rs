//! Satellite: `CkCodec` frame decode under arbitrary byte-boundary
//! truncation. Every prefix of a valid wire frame — cut at any byte,
//! exactly what a mid-frame disconnect produces — must come back as a
//! typed error through the framing layer: never a panic, never a read
//! past the announced payload, never a silently wrong message.

use ck_congest::message::{BitReader, WireCodec, WireParams};
use ck_congest::net::frame::{
    decode_msg_body, read_frame, write_frame, Deadline, Frame, FrameError, FrameKind,
};
use ck_congest::net::OutFrame;
use ck_core::dist::{decode_in_frame, encode_out_frame};
use ck_core::msg::{CkCodec, CkMsg, EdgeTag, SeqBundle};
use ck_core::seq::{IdSeq, MAX_SEQ_LEN};

use proptest::prelude::*;

fn params() -> WireParams {
    WireParams { n: 64, m: 128, id_bits: 11, rank_bits: 14 }
}

/// An arbitrary well-formed `CkMsg` within `params()`'s domains: a
/// selector picks the variant, the remaining draws parameterize it.
fn arb_msg() -> impl Strategy<Value = CkMsg> {
    let p = params();
    (
        0u8..3,
        0u64..(1u64 << p.rank_bits),
        0u64..(1u64 << p.id_bits),
        1usize..(MAX_SEQ_LEN + 1),
        0usize..4,
        0u64..1000,
    )
        .prop_map(move |(variant, rank, lo, seq_len, count, salt)| match variant {
            0 => CkMsg::Rank(rank),
            1 => CkMsg::Abort,
            _ => {
                let hi = if lo + 1 < (1 << p.id_bits) { lo + 1 } else { lo - 1 };
                let tag = EdgeTag::new(rank, lo, hi);
                let bundle: Vec<IdSeq> = (0..count)
                    .map(|i| {
                        let ids: Vec<u64> = (0..seq_len)
                            .map(|j| (salt + i as u64 * 31 + j as u64 * 7) % (1 << p.id_bits))
                            .collect();
                        IdSeq::from_slice(&ids)
                    })
                    .collect();
                CkMsg::Seqs { tag, seqs: SeqBundle(bundle) }
            }
        })
}

/// Serializes a full `Msg` frame (header + body) as it would cross the
/// socket.
fn frame_bytes(body: &[u8]) -> Vec<u8> {
    let mut wire = Vec::new();
    write_frame(&mut wire, FrameKind::Msg, body).unwrap();
    wire
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Every strict byte prefix of a framed message fails typed at
    /// some layer; the full frame round-trips exactly.
    #[test]
    fn every_frame_prefix_fails_typed(msg in arb_msg(), receiver in 0u32..64, port in 0u32..8) {
        let p = params();
        let body = encode_out_frame(&OutFrame { receiver, port, msg: msg.clone() }, &p).unwrap();
        let wire = frame_bytes(&body);

        for cut in 0..wire.len() {
            let deadline = Deadline::after_ms(1_000);
            match read_frame(&mut &wire[..cut], &deadline) {
                // The stream ended mid-frame: the only acceptable
                // typed outcome for a prefix of the 5-byte header or
                // of the announced body.
                Err(FrameError::Truncated) => {}
                Err(e) => panic!("prefix {cut}: unexpected error {e:?}"),
                Ok(Frame { kind, body: got }) => {
                    // `read_frame` stops at the announced length, so a
                    // *shorter* valid frame can never surface here.
                    panic!("prefix {cut} decoded as a frame: {kind:?} ({} bytes)", got.len());
                }
            }
        }

        // The untruncated frame decodes to the exact message.
        let deadline = Deadline::after_ms(1_000);
        let frame = read_frame(&mut &wire[..], &deadline).unwrap();
        prop_assert_eq!(frame.kind, FrameKind::Msg);
        let (header, decoded) = decode_in_frame(&frame.body, &p).unwrap();
        prop_assert_eq!(header.receiver, receiver);
        prop_assert_eq!(header.port, port);
        prop_assert_eq!(decoded, msg);
    }

    /// Every strict prefix of the `Msg` *body* fails typed through
    /// `decode_in_frame`: short of the 14-byte header it is
    /// `Truncated`, past it the payload no longer matches `bit_len`.
    #[test]
    fn every_body_prefix_fails_typed(msg in arb_msg(), receiver in 0u32..64, port in 0u32..8) {
        let p = params();
        let body = encode_out_frame(&OutFrame { receiver, port, msg }, &p).unwrap();
        for cut in 0..body.len() {
            match decode_in_frame(&body[..cut], &p) {
                Err(
                    FrameError::Truncated | FrameError::BadBody(_) | FrameError::Codec(_),
                ) => {}
                Err(e) => panic!("body prefix {cut}: unexpected error {e:?}"),
                Ok(_) => panic!("body prefix {cut} of {} decoded", body.len()),
            }
        }
    }

    /// A context word outside the codec's domain is rejected before
    /// any payload bit is touched.
    #[test]
    fn out_of_domain_context_rejected(msg in arb_msg(), ctx in (MAX_SEQ_LEN as u16 + 1)..u16::MAX) {
        let p = params();
        let mut body =
            encode_out_frame(&OutFrame { receiver: 0, port: 0, msg }, &p).unwrap();
        body[8..10].copy_from_slice(&ctx.to_le_bytes());
        prop_assert_eq!(
            decode_in_frame(&body, &p),
            Err(FrameError::BadBody("context word out of domain"))
        );
    }

    /// Bit-level truncation never panics and never over-reads: decode
    /// on a shortened bit budget either fails typed or yields a
    /// message that honestly fits in the budget it was given.
    #[test]
    fn bit_truncation_never_over_reads(msg in arb_msg()) {
        let p = params();
        let seq_len = match &msg {
            CkMsg::Seqs { seqs, .. } => seqs.as_slice().first().map(|s| s.len()).unwrap_or(0),
            _ => 0,
        };
        let codec = CkCodec::new(seq_len);
        let buf = codec.encode_to_buf(&msg, &p).unwrap();
        let total_bits = buf.len_bits();
        for keep in 0..total_bits {
            let bytes = usize::try_from(keep.div_ceil(8)).unwrap();
            let mut r = BitReader::new(&buf.as_bytes()[..bytes], keep);
            if let Ok(short) = codec.decode(&p, &mut r) {
                // A prefix may itself form a complete message; it must
                // then re-encode within the bits it claimed to use.
                let re = codec.encode_to_buf(&short, &p).unwrap();
                prop_assert!(re.len_bits() <= keep, "decode of {keep} bits over-read");
            }
        }
    }

    /// A corrupted kind byte is a typed `BadKind`, whatever follows.
    #[test]
    fn bad_kind_byte_rejected(msg in arb_msg(), bad in 14u8..u8::MAX) {
        let p = params();
        let body = encode_out_frame(&OutFrame { receiver: 0, port: 0, msg }, &p).unwrap();
        let mut wire = frame_bytes(&body);
        wire[0] = bad;
        let deadline = Deadline::after_ms(1_000);
        prop_assert_eq!(
            read_frame(&mut &wire[..], &deadline),
            Err(FrameError::BadKind(bad))
        );
    }
}

/// Deterministic spot check: an empty `Seqs` bundle (context word 0)
/// survives the handshake — the degenerate case the proptest strategy
/// also covers, pinned here so a strategy change cannot lose it.
#[test]
fn empty_bundle_context_zero_roundtrips() {
    let p = params();
    let msg = CkMsg::Seqs { tag: EdgeTag::new(3, 1, 2), seqs: SeqBundle(Vec::new()) };
    let body = encode_out_frame(&OutFrame { receiver: 5, port: 1, msg: msg.clone() }, &p).unwrap();
    let (header, decoded) = decode_in_frame(&body, &p).unwrap();
    assert_eq!(header.ctx, 0);
    assert_eq!(decoded, msg);
    // And every prefix still fails typed.
    for cut in 0..body.len() {
        assert!(
            decode_msg_body(&body[..cut]).is_err() || decode_in_frame(&body[..cut], &p).is_err()
        );
    }
}
