//! Differential property suite for the collision-scan kernels: the
//! scalar Phase-2 reference paths and the `SeqBlock` batch kernels
//! must be extensionally identical on random inputs — same reject
//! decisions, same witnesses in the same order, same pruned send sets,
//! same row values — for every backend this build compiles.
//!
//! CI runs this suite explicitly in every feature-matrix leg
//! (`--no-default-features`, default, `--features simd`): the backends
//! are forced per property, so the scalar and kernel paths can never
//! drift apart unnoticed regardless of which one a leg dispatches to
//! by default.

use ck_core::decide::{decide_all_rejects, decide_reject};
use ck_core::prune::{build_send_set, build_send_set_scanned, PrunerKind, SendSetScratch};
use ck_core::scan::{
    decide_all_rejects_scanned, decide_reject_scanned, ScanBackend, ScanScratch, SeqBlock,
};
use ck_core::seq::{IdSeq, MAX_SEQ_LEN};
use proptest::collection::vec;
use proptest::prelude::*;

/// Every backend, compiled or not: an uncompiled `Simd` must *resolve*
/// to the portable kernels and still agree, and `Hybrid`'s size
/// dispatch must be invisible in the outputs.
const BACKENDS: [ScanBackend; 4] =
    [ScanBackend::Scalar, ScanBackend::Lanes, ScanBackend::Simd, ScanBackend::Hybrid];

/// Cycle lengths exercised by the decide differential: the small range
/// the protocols live in, plus the `MAX_K` boundary (full 16-ID lanes).
const KS: [usize; 9] = [3, 4, 5, 6, 7, 8, 9, 32, 33];

/// First `want` distinct values of `ids`, as a sequence (None when too
/// few distinct values remain).
fn distinct_prefix(ids: &[u64], want: usize) -> Option<Vec<u64>> {
    let mut d: Vec<u64> = Vec::with_capacity(want);
    for &x in ids {
        if !d.contains(&x) {
            d.push(x);
            if d.len() == want {
                return Some(d);
            }
        }
    }
    (want == 0).then(Vec::new)
}

/// A duplicate-free sequence set over a small universe (overlaps are
/// the interesting cases), lengths free over `0..=MAX_SEQ_LEN`.
fn arb_seq_set() -> impl Strategy<Value = Vec<IdSeq>> {
    vec(vec(0u64..24, 0..MAX_SEQ_LEN + 4), 0..10).prop_map(|raws| {
        raws.iter()
            .map(|ids| {
                let mut d: Vec<u64> = Vec::new();
                for &x in ids {
                    if !d.contains(&x) && d.len() < MAX_SEQ_LEN {
                        d.push(x);
                    }
                }
                IdSeq::from_slice(&d)
            })
            .collect()
    })
}

/// A random decide-round input: `k`, the deciding node's ID (drawn
/// from the same small universe so sequences can contain it), received
/// sequences of exact and off-by-one lengths, and — for even `k` —
/// own-send sequences ending in `myid`.
#[allow(clippy::type_complexity)]
fn arb_decide_case() -> impl Strategy<Value = (usize, u64, Vec<IdSeq>, Vec<IdSeq>)> {
    (0usize..KS.len())
        .prop_flat_map(|ki| {
            let k = KS[ki];
            let half = k / 2;
            let universe = 2 * half as u64 + 6;
            (
                Just(k),
                0u64..universe,
                vec(vec(0u64..universe, half + 4), 0..9),
                vec(vec(0u64..universe, half + 4), 0..4),
            )
        })
        .prop_map(|(k, myid, recv_raw, own_raw)| {
            let half = k / 2;
            let received: Vec<IdSeq> = recv_raw
                .iter()
                .filter_map(|ids| {
                    // Mostly exact-length sequences, with off-length noise
                    // both paths must skip identically.
                    let want = match ids.first().copied().unwrap_or(0) % 4 {
                        0 if half > 1 => half - 1,
                        1 => (half + 1).min(MAX_SEQ_LEN),
                        _ => half,
                    };
                    distinct_prefix(ids, want).map(|d| IdSeq::from_slice(&d))
                })
                .collect();
            let own: Vec<IdSeq> = own_raw
                .iter()
                .filter_map(|ids| {
                    let body: Vec<u64> = ids.iter().copied().filter(|&x| x != myid).collect();
                    distinct_prefix(&body, half.saturating_sub(1)).map(|mut d| {
                        d.push(myid);
                        IdSeq::from_slice(&d)
                    })
                })
                .collect();
            (k, myid, own, received)
        })
}

/// A random prune-round input: `k`, `t` in the legal window, sequences
/// of exactly `t − 1` IDs, and the executing node's ID.
fn arb_prune_case() -> impl Strategy<Value = (usize, usize, u64, Vec<IdSeq>)> {
    (4usize..=12)
        .prop_flat_map(|k| {
            (Just(k), 2usize..=(k / 2).max(2)).prop_flat_map(|(k, t)| {
                let universe = 3 * t as u64 + 4;
                (Just(k), Just(t), 0u64..universe, vec(vec(0u64..universe, t + 3), 0..10))
            })
        })
        .prop_map(|(k, t, myid, raws)| {
            let seqs: Vec<IdSeq> = raws
                .iter()
                .filter_map(|ids| distinct_prefix(ids, t - 1).map(|d| IdSeq::from_slice(&d)))
                .collect();
            (k, t, myid, seqs)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The row kernels against the scalar `IdSeq` methods, element by
    /// element, for every compiled backend.
    #[test]
    fn kernel_rows_match_scalar_ops(
        seqs in arb_seq_set(),
        probe_raw in vec(0u64..24, 0..MAX_SEQ_LEN),
        id in 0u64..30,
        extra in 0u64..30,
    ) {
        let probe = {
            let mut d: Vec<u64> = Vec::new();
            for &x in &probe_raw {
                if !d.contains(&x) {
                    d.push(x);
                }
            }
            IdSeq::from_slice(&d)
        };
        let mut block = SeqBlock::new();
        block.load(&seqs);
        let (mut row, mut marks, mut out) = (Vec::new(), Vec::new(), Vec::new());
        for backend in [ScanBackend::Lanes, ScanBackend::Simd] {
            block.contains_row(id, backend, &mut row);
            for (s, q) in seqs.iter().enumerate() {
                prop_assert_eq!(row[s] == 1, q.contains(id), "contains {:?} s={}", backend, s);
            }
            prop_assert_eq!(
                block.contains_any(id, backend, &mut row),
                seqs.iter().any(|q| q.contains(id))
            );
            block.overlap_counts(&probe, backend, &mut row);
            for (s, q) in seqs.iter().enumerate() {
                let expect = probe.iter().filter(|&e| q.contains(e)).count() as u64;
                prop_assert_eq!(row[s], expect, "overlap {:?} s={}", backend, s);
            }
            block.pairwise_disjoint(&probe, backend, &mut row);
            for (s, q) in seqs.iter().enumerate() {
                prop_assert_eq!(row[s] == 1, probe.disjoint_with(q), "disjoint {:?} s={}", backend, s);
            }
            block.union_size_with(&probe, extra, backend, &mut marks, &mut out);
            for (s, q) in seqs.iter().enumerate() {
                prop_assert_eq!(
                    out[s],
                    probe.union_size_with(q, extra) as u64,
                    "union {:?} s={}", backend, s
                );
            }
        }
    }

    /// Scalar `decide_all_rejects` ≡ the `SeqBlock` kernel decision —
    /// same witnesses, same order — over random sequence sets, cycle
    /// lengths (`MAX_K` included), and overlap structures.
    #[test]
    fn decide_scanned_matches_scalar((k, myid, own, received) in arb_decide_case()) {
        let expect = decide_all_rejects(k, myid, &own, &received);
        let mut scratch = ScanScratch::new();
        let mut got = Vec::new();
        for backend in BACKENDS {
            decide_all_rejects_scanned(backend, k, myid, &own, &received, &mut scratch, &mut got);
            prop_assert_eq!(
                &got, &expect,
                "{:?} k={} myid={} own={:?} recv={:?}", backend, k, myid, &own, &received
            );
            prop_assert_eq!(
                decide_reject_scanned(backend, k, myid, &own, &received, &mut scratch),
                decide_reject(k, myid, &own, &received),
                "first witness {:?}", backend
            );
        }
    }

    /// Scalar representative pruning ≡ the scanned pruner (maintained
    /// hit rows) — same accepted sequences, same appended output.
    #[test]
    fn prune_scanned_matches_scalar((k, t, myid, seqs) in arb_prune_case()) {
        let expect = build_send_set(PrunerKind::Representative, &seqs, myid, k, t);
        let mut scratch = SendSetScratch::default();
        let mut scan = ScanScratch::new();
        let mut got = Vec::new();
        for backend in BACKENDS {
            build_send_set_scanned(
                PrunerKind::Representative, backend,
                &seqs, myid, k, t,
                &mut scratch, &mut scan, &mut got,
            );
            prop_assert_eq!(
                &got, &expect,
                "{:?} k={} t={} myid={} seqs={:?}", backend, k, t, myid, &seqs
            );
        }
    }
}
