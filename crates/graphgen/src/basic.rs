//! Deterministic graph families.
//!
//! These are the structured workloads of the experiment suite: cycles and
//! theta graphs (the Figure-1 family of the paper), grids, tori,
//! hypercubes, complete and complete-bipartite graphs, cages, and cactus
//! graphs whose only cycles have one fixed length (clean `Ck`-free /
//! `Ck`-present controls).

// ck-lint: allow-file(no-panic, reason = "every generator emits a structurally valid edge list over a fresh node range, so build() failure is a generator bug, not a runtime condition")
use ck_congest::graph::{Graph, GraphBuilder, NodeIndex};

/// The cycle `C_n` on nodes `0..n` (requires `n ≥ 3`).
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 nodes");
    let mut b = GraphBuilder::new(n);
    for i in 0..n as NodeIndex {
        b.edge(i, ((i as usize + 1) % n) as NodeIndex);
    }
    b.build().expect("cycle is valid")
}

/// The path `P_n` on nodes `0..n`.
pub fn path(n: usize) -> Graph {
    assert!(n >= 1);
    let mut b = GraphBuilder::new(n);
    for i in 1..n as NodeIndex {
        b.edge(i - 1, i);
    }
    b.build().expect("path is valid")
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 0..n as NodeIndex {
        for j in (i + 1)..n as NodeIndex {
            b.edge(i, j);
        }
    }
    b.build().expect("complete graph is valid")
}

/// The complete bipartite graph `K_{a,b}` (left part `0..a`, right part
/// `a..a+b`). Bipartite ⟹ free of every odd cycle.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = GraphBuilder::new(a + b);
    for i in 0..a as NodeIndex {
        for j in 0..b as NodeIndex {
            g.edge(i, a as NodeIndex + j);
        }
    }
    g.build().expect("complete bipartite is valid")
}

/// Star with `leaves` leaves (center is node 0). A tree: cycle-free.
pub fn star(leaves: usize) -> Graph {
    let mut b = GraphBuilder::new(leaves + 1);
    for i in 1..=leaves as NodeIndex {
        b.edge(0, i);
    }
    b.build().expect("star is valid")
}

/// Balanced binary tree with `levels` levels (cycle-free control).
pub fn binary_tree(levels: u32) -> Graph {
    let n = (1usize << levels) - 1;
    let mut b = GraphBuilder::new(n.max(1));
    for i in 1..n {
        b.edge(i as NodeIndex, ((i - 1) / 2) as NodeIndex);
    }
    b.build().expect("tree is valid")
}

/// `rows × cols` grid. Shortest cycles are C4.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let idx = |r: usize, c: usize| (r * cols + c) as NodeIndex;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.edge(idx(r, c), idx(r, c + 1));
            }
            if r + 1 < rows {
                b.edge(idx(r, c), idx(r + 1, c));
            }
        }
    }
    b.build().expect("grid is valid")
}

/// `rows × cols` torus (grid with wraparound; requires both dims ≥ 3 for
/// simplicity of the wrap edges).
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus needs both dimensions ≥ 3");
    let idx = |r: usize, c: usize| (r * cols + c) as NodeIndex;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            b.edge(idx(r, c), idx(r, (c + 1) % cols));
            b.edge(idx(r, c), idx((r + 1) % rows, c));
        }
    }
    b.build().expect("torus is valid")
}

/// The `d`-dimensional hypercube `Q_d` (bipartite: only even cycles).
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let w = v ^ (1 << bit);
            if w > v {
                b.edge(v as NodeIndex, w as NodeIndex);
            }
        }
    }
    b.build().expect("hypercube is valid")
}

/// The Petersen graph: 3-regular, girth 5, famously C3- and C4-free.
pub fn petersen() -> Graph {
    let mut b = GraphBuilder::new(10);
    for i in 0..5u32 {
        b.edge(i, (i + 1) % 5);
        b.edge(5 + i, 5 + ((i + 2) % 5));
        b.edge(i, 5 + i);
    }
    b.build().expect("petersen is valid")
}

/// The Heawood graph: 3-regular bipartite cage of girth 6 (no C3/C4/C5,
/// and no odd cycle at all).
pub fn heawood() -> Graph {
    let mut b = GraphBuilder::new(14);
    for i in 0..14u32 {
        b.edge(i, (i + 1) % 14);
    }
    // Chords of the standard LCF notation [5, -5]^7.
    for i in (0..14u32).step_by(2) {
        b.edge(i, (i + 5) % 14);
    }
    b.build().expect("heawood is valid")
}

/// Theta graph `Θ(paths, len)`: two hub nodes `u = 0` and `v = 1` joined
/// by `paths` internally-disjoint paths of `len` internal nodes each, plus
/// the direct edge `{u, v}`. Every pair of paths closes a cycle of length
/// `2·len + 2` through the hubs, and each path closes a `(len + 2)`-cycle
/// with the hub edge — the generalization of the paper's Figure 1
/// (`paths = 2, len = 1` is close to the figure) and the worst case for
/// unpruned append-and-forward, since each hub neighbor sees `paths`
/// same-length route prefixes.
pub fn theta(paths: usize, len: usize) -> Graph {
    assert!(paths >= 1 && len >= 1);
    let n = 2 + paths * len;
    let mut b = GraphBuilder::new(n);
    b.edge(0, 1);
    for p in 0..paths {
        let base = (2 + p * len) as NodeIndex;
        b.edge(0, base);
        for i in 1..len {
            b.edge(base + i as NodeIndex - 1, base + i as NodeIndex);
        }
        b.edge(base + (len - 1) as NodeIndex, 1);
    }
    b.build().expect("theta graph is valid")
}

/// Fan graph `F(p)`: hubs `u = 0`, `v = 1` joined by an edge, `p` middle
/// nodes each adjacent to *both* hubs, and an apex `z` adjacent to every
/// middle node. Every ordered pair of distinct middle nodes `x_i, x_j`
/// closes the C5 `(u, x_i, z, x_j, v)` through `{u, v}`.
///
/// This is the paper's Figure-1 pitfall family: each middle node receives
/// both `ID(u)` and `ID(v)` in the first round, and if all of them forward
/// only the same one side, the apex can never assemble a C5.
pub fn fan(p: usize) -> Graph {
    assert!(p >= 2, "the fan needs at least two middle nodes");
    let z = (2 + p) as NodeIndex;
    let mut b = GraphBuilder::new(3 + p);
    b.edge(0, 1);
    for i in 0..p {
        let x = (2 + i) as NodeIndex;
        b.edge(0, x);
        b.edge(1, x);
        b.edge(x, z);
    }
    b.build().expect("fan is valid")
}

/// The exact 5-node instance of the paper's Figure 1 (`fan(2)`): hubs
/// `u = 0`, `v = 1`, middle nodes `x = 2`, `y = 3` adjacent to both hubs,
/// apex `z = 4`. Contains the C5 `(u, x, z, y, v)` through `{u, v}`.
pub fn figure1() -> Graph {
    fan(2)
}

/// Spindle graph: hubs `u = 0`, `v = 1` with the edge `{u, v}`, a layer
/// of `p` nodes fanning out of `u`, a middle path of `mid ≥ 1` nodes, and
/// a layer of `p` nodes fanning into `v`:
/// `u → X(p) → m_1 → … → m_mid → Y(p) → v`. Every `(x, y)` pair closes a
/// cycle of length `mid + 4` through `{u, v}`, and the first middle node
/// receives `p` same-length route prefixes — the congestion worst case
/// for unpruned forwarding (it must offer `p` sequences while Algorithm 1
/// forwards at most `k − t + 1`).
pub fn spindle(p: usize, mid: usize) -> Graph {
    assert!(p >= 1 && mid >= 1);
    let n = 2 + 2 * p + mid;
    let x0 = 2;
    let m0 = 2 + p;
    let y0 = 2 + p + mid;
    let mut b = GraphBuilder::new(n);
    b.edge(0, 1);
    for i in 0..p {
        b.edge(0, (x0 + i) as NodeIndex);
        b.edge((x0 + i) as NodeIndex, m0 as NodeIndex);
        b.edge((y0 + i) as NodeIndex, (m0 + mid - 1) as NodeIndex);
        b.edge((y0 + i) as NodeIndex, 1);
    }
    for j in 1..mid {
        b.edge((m0 + j - 1) as NodeIndex, (m0 + j) as NodeIndex);
    }
    b.build().expect("spindle is valid")
}

/// A cactus whose blocks are `count` cycles of length `len`, attached in a
/// chain by bridge edges. Every simple cycle of the graph has length
/// exactly `len`, so the graph is `Ck`-free for every `k ≠ len` while
/// still containing `count` edge-disjoint `C_len` copies.
pub fn cycle_cactus(count: usize, len: usize) -> Graph {
    assert!(count >= 1 && len >= 3);
    let n = count * len;
    let mut b = GraphBuilder::new(n);
    for c in 0..count {
        let base = (c * len) as NodeIndex;
        for i in 0..len {
            b.edge(base + i as NodeIndex, base + ((i + 1) % len) as NodeIndex);
        }
        if c + 1 < count {
            // Bridge from this block to the next.
            b.edge(base, base + len as NodeIndex);
        }
    }
    b.build().expect("cactus is valid")
}

/// The deterministic counterexample of the paper's conclusion (§4): a
/// [`spindle`]`(p, 2)` plus one chord from the highest-index fan-in node
/// `x_big` to the second middle node `z2`.
///
/// The unique *chorded* C6 through `{u, v}` is `u–x_big–z1–z2–y_j–v`
/// (chord `x_big–z2` joins positions 1 and 3). With `p ≥ 5`, Algorithm
/// 1's pruning at `z1` keeps only the `k−t+1 = 4` lexicographically
/// smallest `(u, x_i)` sequences — dropping exactly `x_big`'s — because
/// the pruning is *oblivious to neighborhoods*: it preserves *some* C6
/// witness for every completable remainder, but not the chorded one.
/// An H-freeness tester (H = chorded k-cycle) built on this pruning
/// therefore misses H while happily reporting chordless C6s.
pub fn chorded_spindle(p: usize) -> Graph {
    assert!(p >= 5, "the pruning drop needs at least 5 fan-in nodes");
    let base = spindle(p, 2);
    let x_big = (1 + p) as NodeIndex; // last fan-in node
    let z2 = (3 + p) as NodeIndex; // second middle node
    let mut b = GraphBuilder::new(base.n());
    b.edges(base.edges().iter().map(|e| (e.a, e.b)));
    b.edge(x_big, z2);
    b.build().expect("chorded spindle is valid")
}

/// Book graph `B(pages, k)`: `pages` copies of `C_k` all sharing one common
/// edge `{0, 1}`. Maximally *non*-edge-disjoint cycles: useful for checking
/// that detection does not rely on disjointness.
pub fn book(pages: usize, k: usize) -> Graph {
    assert!(pages >= 1 && k >= 3);
    let inner = k - 2;
    let mut b = GraphBuilder::new(2 + pages * inner);
    b.edge(0, 1);
    for p in 0..pages {
        let base = (2 + p * inner) as NodeIndex;
        b.edge(0, base);
        for i in 1..inner {
            b.edge(base + i as NodeIndex - 1, base + i as NodeIndex);
        }
        b.edge(base + (inner - 1) as NodeIndex, 1);
    }
    b.build().expect("book graph is valid")
}

/// Lollipop: `K_clique` glued to a path of `tail` nodes. Dense cluster with
/// a long sparse appendix; stress case for rank arbitration (the heavy side
/// floods candidates while the tail stays silent).
pub fn lollipop(clique: usize, tail: usize) -> Graph {
    assert!(clique >= 1);
    let mut b = GraphBuilder::new(clique + tail);
    for i in 0..clique as NodeIndex {
        for j in (i + 1)..clique as NodeIndex {
            b.edge(i, j);
        }
    }
    for t in 0..tail as NodeIndex {
        let prev = if t == 0 { (clique - 1) as NodeIndex } else { clique as NodeIndex + t - 1 };
        b.edge(prev, clique as NodeIndex + t);
    }
    b.build().expect("lollipop is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_basics() {
        for k in 3..10 {
            let g = cycle(k);
            assert_eq!(g.n(), k);
            assert_eq!(g.m(), k);
            assert_eq!(g.girth(), Some(k as u32));
            assert!(g.is_connected());
            assert!((0..k).all(|v| g.degree(v as NodeIndex) == 2));
        }
    }

    #[test]
    fn path_is_acyclic() {
        let g = path(10);
        assert_eq!(g.m(), 9);
        assert_eq!(g.girth(), None);
    }

    #[test]
    fn complete_counts() {
        let g = complete(6);
        assert_eq!(g.m(), 15);
        assert_eq!(g.girth(), Some(3));
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn complete_bipartite_counts() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 12);
        assert_eq!(g.girth(), Some(4));
    }

    #[test]
    fn star_and_tree_are_forests() {
        assert_eq!(star(9).girth(), None);
        let t = binary_tree(5);
        assert_eq!(t.n(), 31);
        assert_eq!(t.m(), 30);
        assert_eq!(t.girth(), None);
        assert!(t.is_connected());
    }

    #[test]
    fn grid_girth_is_four() {
        let g = grid(4, 5);
        assert_eq!(g.n(), 20);
        assert_eq!(g.m(), 4 * 4 + 5 * 3); // horizontal 4*4, vertical 3*5
        assert_eq!(g.girth(), Some(4));
    }

    #[test]
    fn torus_is_regular() {
        let g = torus(4, 5);
        assert_eq!(g.n(), 20);
        assert!((0..20).all(|v| g.degree(v) == 4));
        assert_eq!(g.girth(), Some(4));
    }

    #[test]
    fn hypercube_props() {
        let g = hypercube(4);
        assert_eq!(g.n(), 16);
        assert_eq!(g.m(), 32);
        assert_eq!(g.girth(), Some(4));
        assert!(g.is_connected());
    }

    #[test]
    fn cages_have_expected_girth() {
        assert_eq!(petersen().girth(), Some(5));
        let h = heawood();
        assert_eq!(h.n(), 14);
        assert_eq!(h.m(), 21);
        assert_eq!(h.girth(), Some(6));
        assert!((0..14).all(|v| h.degree(v) == 3));
    }

    #[test]
    fn theta_structure() {
        let g = theta(3, 2);
        assert_eq!(g.n(), 2 + 6);
        // Hub degrees: 1 (direct edge) + 3 path attachments.
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.degree(1), 4);
        // Direct edge + per path: 2 hub attachments + 1 internal edge.
        assert_eq!(g.m(), 1 + 3 * 3);
        // Hub edge + one path of 2 internal nodes = C4.
        assert_eq!(g.girth(), Some(4));
    }

    #[test]
    fn figure1_matches_paper() {
        let g = figure1();
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 7);
        // x and y are adjacent to both u and v (they receive both IDs in
        // round 1), so triangles u-x-v and u-y-v exist.
        assert_eq!(g.girth(), Some(3));
        assert!(g.has_edge(2, 0) && g.has_edge(2, 1));
        assert!(g.has_edge(3, 0) && g.has_edge(3, 1));
        assert_eq!(g.degree(4), 2);
    }

    #[test]
    fn fan_structure() {
        let g = fan(4);
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 1 + 3 * 4);
        assert_eq!(g.degree(6), 4); // apex z
        assert_eq!(g.degree(0), 5); // hub u
    }

    #[test]
    fn spindle_structure() {
        let g = spindle(3, 2);
        assert_eq!(g.n(), 2 + 6 + 2);
        assert_eq!(g.m(), 1 + 4 * 3 + 1);
        assert!(g.is_connected());
        // First middle node: p in-edges + 1 path edge.
        assert_eq!(g.degree(5), 4);
    }

    #[test]
    fn cactus_cycles_have_one_length() {
        let g = cycle_cactus(4, 5);
        assert_eq!(g.n(), 20);
        assert_eq!(g.m(), 4 * 5 + 3);
        assert_eq!(g.girth(), Some(5));
        assert!(g.is_connected());
    }

    #[test]
    fn book_shares_an_edge() {
        let g = book(5, 4);
        assert_eq!(g.n(), 2 + 5 * 2);
        assert_eq!(g.girth(), Some(4));
        assert_eq!(g.degree(0), 6);
    }

    #[test]
    fn lollipop_shape() {
        let g = lollipop(5, 4);
        assert_eq!(g.n(), 9);
        assert_eq!(g.m(), 10 + 4);
        assert!(g.is_connected());
        assert_eq!(g.degree(8), 1);
    }
}
