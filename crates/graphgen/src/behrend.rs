//! Behrend-style hard instances.
//!
//! The paper's motivation (§1.1, citing \[FRST16\]) is that the sampling
//! techniques behind the constant-round C3/C4 testers provably fail for
//! `k ≥ 5` on instances derived from *Behrend graphs*: graphs whose many
//! `Ck` copies are spread so thin that no local density signal survives —
//! each copy is pinned to an arithmetic structure rather than clustered
//! around high-degree hubs.
//!
//! We implement the two classical arithmetic ingredients and the layered
//! graph construction:
//!
//! * [`behrend_ap_free_set`] — Behrend's digit construction of a large
//!   subset of `[N]` with no 3-term arithmetic progression;
//! * [`erdos_turan_sidon`] — the Erdős–Turán Sidon set (`B₂` set: all
//!   pairwise sums distinct) from quadratic residues;
//! * [`layered_ck`] — a cyclically `k`-partite graph with one planted
//!   `Ck` per (offset, stride) pair; the planted copies are pairwise
//!   edge-disjoint by construction.
//!
//! **Substitution note (see DESIGN.md):** we use these as *workload
//! generators* exercising the spread-cycle regime, not as a re-proof of
//! the \[FRST16\] lower bound.

// ck-lint: allow-file(no-panic, reason = "Behrend constructions emit in-range edges by arithmetic on validated parameters")
use ck_congest::graph::{Graph, GraphBuilder, NodeIndex};

/// Behrend's construction: numbers whose base-`(2d−1)` digits are all
/// `< d` and whose squared digit-norm equals the most popular value.
/// Such a set has no 3-term arithmetic progression: digitwise addition
/// never carries, and equal norms force the midpoint to coincide.
///
/// Returns a 3-AP-free subset of `[0, N)`, non-empty for `N ≥ 1`.
pub fn behrend_ap_free_set(n_bound: u64) -> Vec<u64> {
    assert!(n_bound >= 1);
    if n_bound <= 3 {
        return vec![n_bound - 1];
    }
    // Pick digit count D and base 2d−1 to roughly maximize d^D ≤ N.
    let mut best: Vec<u64> = vec![0];
    for digits in 1..=((64 - n_bound.leading_zeros()) as usize).max(1) {
        // Largest d with (2d−1)^digits ≤ N.
        let mut d = 1u64;
        loop {
            let base = 2 * (d + 1) - 1;
            if base.checked_pow(digits as u32).is_none_or(|v| v > n_bound) {
                break;
            }
            d += 1;
        }
        if d < 2 {
            continue;
        }
        let base = 2 * d - 1;
        // Enumerate digit vectors with entries < d, bucket by norm.
        let mut buckets: std::collections::HashMap<u64, Vec<u64>> =
            std::collections::HashMap::new();
        let mut digit_vec = vec![0u64; digits];
        loop {
            let norm: u64 = digit_vec.iter().map(|&x| x * x).sum();
            let value: u64 = digit_vec.iter().rev().fold(0, |acc, &x| acc * base + x);
            if value < n_bound {
                buckets.entry(norm).or_default().push(value);
            }
            // Odometer increment.
            let mut i = 0;
            loop {
                if i == digits {
                    break;
                }
                digit_vec[i] += 1;
                if digit_vec[i] < d {
                    break;
                }
                digit_vec[i] = 0;
                i += 1;
            }
            if i == digits {
                break;
            }
        }
        if let Some(candidate) = buckets.into_values().max_by_key(|v| v.len()) {
            if candidate.len() > best.len() {
                best = candidate;
            }
        }
    }
    best.sort_unstable();
    best
}

/// Erdős–Turán Sidon set for prime `p`: `{2p·a + (a² mod p) : 0 ≤ a < p}`
/// ⊂ `[0, 2p²)`. All pairwise sums are distinct.
pub fn erdos_turan_sidon(p: u64) -> Vec<u64> {
    assert!(is_prime(p), "{p} must be prime");
    (0..p).map(|a| 2 * p * a + (a * a) % p).collect()
}

/// Trial-division primality (inputs here are tiny).
pub fn is_prime(x: u64) -> bool {
    if x < 2 {
        return false;
    }
    let mut d = 2;
    while d * d <= x {
        if x.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

/// A Behrend-style layered instance plus its planted-copy certificate.
#[derive(Clone, Debug)]
pub struct LayeredInstance {
    pub graph: Graph,
    /// Planted `Ck` copies, each listed layer by layer.
    pub planted: Vec<Vec<NodeIndex>>,
    /// Stride set used.
    pub strides: Vec<u64>,
    /// Residue classes per layer.
    pub width: usize,
}

/// Cyclically `k`-partite layered graph on `k·width` nodes: layer `i`
/// holds residues `Z_width`; for every offset `x ∈ Z_width` and stride
/// `s ∈ strides`, the planted copy visits `(i, x + i·s mod width)` for
/// `i = 0..k`, with edges between consecutive layers and a closing edge
/// from layer `k−1` back to layer 0.
///
/// Every edge between consecutive layers `i, i+1` determines `(x, s)`
/// uniquely: `s` is the residue difference (strides are kept distinct mod
/// `width`) and `x` follows. The closing edge determines `x` directly and
/// `s` through `(k−1)·s mod width`, so strides are additionally filtered
/// to keep `(k−1)·s` residues distinct. The surviving `width·|strides|`
/// planted copies are then pairwise edge-disjoint.
pub fn layered_ck(k: usize, width: usize, strides: &[u64]) -> LayeredInstance {
    assert!(k >= 3);
    assert!(width >= 1);
    let mut sorted: Vec<u64> = strides.iter().map(|&s| s % width as u64).collect();
    sorted.sort_unstable();
    sorted.dedup();
    let mut seen_close = std::collections::HashSet::new();
    let strides: Vec<u64> = sorted
        .into_iter()
        .filter(|&s| seen_close.insert((k as u64 - 1) * s % width as u64))
        .collect();
    assert!(!strides.is_empty(), "need at least one stride");
    let node =
        |layer: usize, x: u64| (layer * width) as NodeIndex + (x % width as u64) as NodeIndex;
    let mut b = GraphBuilder::new(k * width);
    let mut planted = Vec::with_capacity(width * strides.len());
    for x in 0..width as u64 {
        for &s in &strides {
            let copy: Vec<NodeIndex> = (0..k).map(|i| node(i, x + i as u64 * s)).collect();
            for i in 0..k {
                b.edge(copy[i], copy[(i + 1) % k]);
            }
            planted.push(copy);
        }
    }
    let graph = b.build().expect("layered graph is valid");
    LayeredInstance { graph, planted, strides, width }
}

/// Convenience: a layered `Ck` instance with Behrend strides, the
/// spread-cycle workload for experiment E10. `width` is chosen so strides
/// stay distinct modulo it.
pub fn behrend_ck_instance(k: usize, width: usize) -> LayeredInstance {
    let strides = behrend_ap_free_set((width as u64) / (2 * k as u64).max(1)).to_vec();
    let strides = if strides.is_empty() { vec![1] } else { strides };
    layered_ck(k, width, &strides)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::farness::{contains_ck, greedy_ck_packing, is_valid_ck};
    use std::collections::HashSet;

    fn has_three_ap(s: &[u64]) -> bool {
        let set: HashSet<u64> = s.iter().copied().collect();
        for (i, &a) in s.iter().enumerate() {
            for &b in &s[i + 1..] {
                // a < b; check midpoint extension a, b, 2b - a.
                if set.contains(&(2 * b - a)) && b - a > 0 {
                    return true;
                }
            }
        }
        false
    }

    #[test]
    fn behrend_set_is_ap_free() {
        for &n in &[10u64, 50, 200, 1000, 5000] {
            let s = behrend_ap_free_set(n);
            assert!(!s.is_empty());
            assert!(s.iter().all(|&x| x < n));
            assert!(!has_three_ap(&s), "AP found for N={n}: {s:?}");
        }
    }

    #[test]
    fn behrend_set_is_reasonably_large() {
        let s = behrend_ap_free_set(1000);
        assert!(s.len() >= 10, "expected a nontrivial set, got {}", s.len());
    }

    #[test]
    fn sidon_sums_are_distinct() {
        for &p in &[5u64, 7, 11, 13] {
            let s = erdos_turan_sidon(p);
            assert_eq!(s.len(), p as usize);
            let mut sums = HashSet::new();
            for i in 0..s.len() {
                for j in i..s.len() {
                    assert!(sums.insert(s[i] + s[j]), "duplicate sum in Sidon set p={p}");
                }
            }
        }
    }

    #[test]
    fn primality() {
        assert!(is_prime(2) && is_prime(13) && is_prime(97));
        assert!(!is_prime(0) && !is_prime(1) && !is_prime(91));
    }

    #[test]
    fn layered_planted_copies_are_valid_and_disjoint() {
        let inst = layered_ck(5, 13, &[1, 2, 5]);
        assert_eq!(inst.strides, vec![1, 2, 5]);
        assert_eq!(inst.planted.len(), 13 * 3);
        let mut used: HashSet<(NodeIndex, NodeIndex)> = HashSet::new();
        for copy in &inst.planted {
            assert!(is_valid_ck(&inst.graph, 5, copy), "invalid copy {copy:?}");
            for i in 0..5 {
                let (a, b) = (copy[i], copy[(i + 1) % 5]);
                let e = if a < b { (a, b) } else { (b, a) };
                assert!(used.insert(e), "planted copies share edge {e:?}");
            }
        }
        assert!(contains_ck(&inst.graph, 5));
    }

    #[test]
    fn layered_packing_at_least_planted() {
        let inst = layered_ck(4, 10, &[1, 3]);
        let packing = greedy_ck_packing(&inst.graph, 4);
        assert!(
            packing.len() >= inst.planted.len() / 4,
            "greedy packing {} too far below planted {}",
            packing.len(),
            inst.planted.len()
        );
    }

    #[test]
    fn colliding_strides_are_filtered() {
        // k=5, width=12: (k−1)·2 = 8 ≡ (k−1)·5 = 20 (mod 12), so stride 5
        // must be dropped to keep closing edges disjoint.
        let inst = layered_ck(5, 12, &[1, 2, 5]);
        assert_eq!(inst.strides, vec![1, 2]);
        assert_eq!(inst.planted.len(), 12 * 2);
    }

    #[test]
    fn behrend_instance_builds() {
        let inst = behrend_ck_instance(5, 64);
        assert_eq!(inst.graph.n(), 5 * 64);
        assert!(contains_ck(&inst.graph, 5));
        assert!(!inst.planted.is_empty());
    }
}
