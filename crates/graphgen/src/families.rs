//! Additional structured and heavy-tailed families.
//!
//! Circulants (tunable, vertex-transitive cycle structure), named cubic
//! graphs with known girth, random bipartite graphs (even-cycle-only
//! workloads), and a Chung–Lu power-law generator (heavy-tailed degrees:
//! the regime where hub congestion stresses the pruning hardest).

// ck-lint: allow-file(no-panic, reason = "fixed named graphs and validated parametric families: edge lists are in-range by construction")
use ck_congest::graph::{Graph, GraphBuilder, NodeIndex};
use ck_congest::rngs::{derived_rng, labels};
use rand::RngExt;

/// Circulant graph `C_n(S)`: vertex `i` adjacent to `i ± s (mod n)` for
/// every stride `s ∈ strides`. `C_n({1})` is the cycle; strides tune the
/// cycle spectrum precisely (e.g. `C_n({1, 2})` has triangles).
pub fn circulant(n: usize, strides: &[usize]) -> Graph {
    assert!(n >= 3);
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for &s in strides {
            assert!(s >= 1 && s < n, "stride {s} out of range");
            b.edge(i as NodeIndex, ((i + s) % n) as NodeIndex);
        }
    }
    b.build().expect("circulant is valid")
}

/// The Möbius–Kantor graph: cubic, girth 6, bipartite (16 nodes). A
/// clean `C3/C4/C5`-free control with plenty of C6s.
pub fn mobius_kantor() -> Graph {
    // Generalized Petersen graph GP(8, 3).
    let mut b = GraphBuilder::new(16);
    for i in 0..8u32 {
        b.edge(i, (i + 1) % 8); // outer octagon
        b.edge(8 + i, 8 + ((i + 3) % 8)); // inner star polygon
        b.edge(i, 8 + i); // spokes
    }
    b.build().expect("mobius-kantor is valid")
}

/// The Pappus graph: cubic, girth 6, bipartite (18 nodes).
pub fn pappus() -> Graph {
    // LCF notation [5, 7, -7, 7, -7, -5]^3 over an 18-cycle.
    let shifts: [i64; 6] = [5, 7, -7, 7, -7, -5];
    let n = 18i64;
    let mut b = GraphBuilder::new(18);
    for i in 0..18i64 {
        b.edge(i as NodeIndex, ((i + 1) % n) as NodeIndex);
        let s = shifts[(i % 6) as usize];
        let j = (i + s).rem_euclid(n);
        b.edge(i as NodeIndex, j as NodeIndex);
    }
    b.build().expect("pappus is valid")
}

/// Random bipartite graph: parts of `a` and `b` nodes, each cross pair
/// an edge with probability `p`. Odd-cycle-free by construction.
pub fn random_bipartite(a: usize, b: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p));
    let mut rng = derived_rng(seed, labels::GRAPH_TOPOLOGY, 9, 0);
    let mut g = GraphBuilder::new(a + b);
    for i in 0..a {
        for j in 0..b {
            if rng.random_bool(p) {
                g.edge(i as NodeIndex, (a + j) as NodeIndex);
            }
        }
    }
    g.build().expect("random bipartite is valid")
}

/// Chung–Lu power-law graph: node `v` gets weight `(v+1)^(−1/(γ−1))`
/// (scaled); pair `{u, v}` becomes an edge with probability
/// `min(1, w_u·w_v / Σw)`. Produces heavy-tailed degrees for
/// `2 < γ < 3` — the hub-congestion stress regime.
pub fn chung_lu_power_law(n: usize, gamma: f64, avg_degree: f64, seed: u64) -> Graph {
    assert!(gamma > 2.0, "γ must exceed 2 for a finite mean");
    let mut rng = derived_rng(seed, labels::GRAPH_TOPOLOGY, 10, 0);
    let exp = -1.0 / (gamma - 1.0);
    let raw: Vec<f64> = (0..n).map(|v| ((v + 1) as f64).powf(exp)).collect();
    let raw_sum: f64 = raw.iter().sum();
    // Scale weights so Σw ≈ avg_degree·n: expected edge count is
    // Σ_{i<j} w_i·w_j / Σw ≈ Σw / 2 (up to clamping), giving the asked
    // average degree 2m/n ≈ Σw / n.
    let scale = avg_degree * n as f64 / raw_sum;
    let w: Vec<f64> = raw.iter().map(|x| x * scale).collect();
    let total: f64 = w.iter().sum();
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in i + 1..n {
            let p = (w[i] * w[j] / total).min(1.0);
            if rng.random_bool(p) {
                b.edge(i as NodeIndex, j as NodeIndex);
            }
        }
    }
    b.build().expect("chung-lu is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::farness::{contains_ck, is_ck_free};
    use ck_congest::topology::is_bipartite;

    #[test]
    fn circulant_stride_one_is_cycle() {
        let g = circulant(9, &[1]);
        assert_eq!(g.m(), 9);
        assert_eq!(g.girth(), Some(9));
    }

    #[test]
    fn circulant_with_chords_has_triangles() {
        let g = circulant(10, &[1, 2]);
        assert_eq!(g.girth(), Some(3));
        assert!(contains_ck(&g, 3));
        assert_eq!(g.m(), 20);
        assert!((0..10).all(|v| g.degree(v) == 4));
    }

    #[test]
    fn mobius_kantor_properties() {
        let g = mobius_kantor();
        assert_eq!(g.n(), 16);
        assert_eq!(g.m(), 24);
        assert!((0..16).all(|v| g.degree(v) == 3));
        assert_eq!(g.girth(), Some(6));
        assert!(is_bipartite(&g));
        assert!(is_ck_free(&g, 3) && is_ck_free(&g, 4) && is_ck_free(&g, 5));
        assert!(contains_ck(&g, 6));
    }

    #[test]
    fn pappus_properties() {
        let g = pappus();
        assert_eq!(g.n(), 18);
        assert_eq!(g.m(), 27);
        assert!((0..18).all(|v| g.degree(v) == 3));
        assert_eq!(g.girth(), Some(6));
        assert!(is_bipartite(&g));
    }

    #[test]
    fn random_bipartite_has_no_odd_cycles() {
        for seed in 0..4 {
            let g = random_bipartite(8, 10, 0.4, seed);
            assert!(is_bipartite(&g));
            for k in [3usize, 5, 7] {
                assert!(is_ck_free(&g, k));
            }
        }
    }

    #[test]
    fn chung_lu_degrees_are_heavy_tailed() {
        let g = chung_lu_power_law(150, 2.5, 4.0, 7);
        let max = g.max_degree();
        let avg = g.avg_degree();
        assert!(avg > 1.0, "avg degree {avg} too small");
        assert!(max as f64 > 3.0 * avg, "no heavy tail: max {max}, avg {avg}");
        // Determinism.
        let h = chung_lu_power_law(150, 2.5, 4.0, 7);
        assert_eq!(g.edges(), h.edges());
    }

    #[test]
    #[should_panic(expected = "γ must exceed 2")]
    fn chung_lu_rejects_bad_gamma() {
        let _ = chung_lu_power_law(10, 1.5, 2.0, 0);
    }
}
