//! ε-farness machinery and sequential cycle oracles.
//!
//! The paper's detection guarantee is phrased against the *sparse model*
//! notion of farness: `G` is ε-far from `Ck`-free when no `εm` edge
//! additions/removals make it `Ck`-free. Two facts drive the analysis:
//!
//! * (Lemma 4, from \[FRST16\]) ε-far ⟹ at least `εm/k` edge-disjoint `Ck`
//!   copies;
//! * (converse certificate) a packing of more than `εm` edge-disjoint
//!   copies certifies ε-farness, because destroying all copies requires
//!   one distinct removal per copy and additions never destroy a subgraph.
//!
//! This module implements exact `Ck` oracles (existence, enumeration,
//! counting, through-edge queries) by bounded DFS — exponential in `k`
//! only, fine for the constant `k` regime the paper targets — plus a
//! greedy edge-disjoint packing used both to certify generated instances
//! and to reproduce the Lemma 4 experiment.

// ck-lint: allow-file(no-panic, reason = "reference oracles over validated graphs: DFS paths are nonempty and probed edges exist by recursion structure and caller contract")
use ck_congest::graph::{Edge, Graph, NodeIndex};

/// Result of a farness certification attempt.
#[derive(Clone, Debug, PartialEq)]
pub struct FarnessCertificate {
    /// Size of the greedy edge-disjoint `Ck` packing found.
    pub packing: usize,
    /// Edge budget `⌊εm⌋` an adversary may spend.
    pub budget: usize,
    /// True if `packing > εm`, i.e. the graph is certifiably ε-far.
    pub certified: bool,
}

/// Searches for a simple path `from → to` with exactly `len_edges` edges,
/// visiting distinct vertices, using only edges accepted by `alive`, and
/// never traversing `skip_edge`. Returns the vertex sequence
/// `[from, …, to]` when found.
///
/// Pruning: precomputes BFS distances to `to` over alive edges and cuts
/// branches that cannot reach `to` within the remaining budget.
pub fn find_path_exact(
    g: &Graph,
    from: NodeIndex,
    to: NodeIndex,
    len_edges: usize,
    alive: &dyn Fn(u32) -> bool,
    skip_edge: Option<u32>,
) -> Option<Vec<NodeIndex>> {
    if len_edges == 0 {
        return (from == to).then(|| vec![from]);
    }
    if from == to {
        return None; // simple paths of positive length cannot be closed
    }
    // BFS distances to `to` over alive edges (skip_edge removed).
    let mut dist = vec![u32::MAX; g.n()];
    {
        let mut queue = std::collections::VecDeque::new();
        dist[to as usize] = 0;
        queue.push_back(to);
        while let Some(v) = queue.pop_front() {
            let dv = dist[v as usize];
            if dv as usize >= len_edges {
                continue;
            }
            for p in 0..g.degree(v) as u32 {
                let eidx = g.edge_index_at(v, p);
                if Some(eidx) == skip_edge || !alive(eidx) {
                    continue;
                }
                let w = g.neighbor_at(v, p);
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = dv + 1;
                    queue.push_back(w);
                }
            }
        }
    }
    if dist[from as usize] as usize > len_edges {
        return None;
    }

    let mut visited = vec![false; g.n()];
    let mut path = Vec::with_capacity(len_edges + 1);
    visited[from as usize] = true;
    path.push(from);

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        g: &Graph,
        to: NodeIndex,
        remaining: usize,
        alive: &dyn Fn(u32) -> bool,
        skip_edge: Option<u32>,
        dist: &[u32],
        visited: &mut [bool],
        path: &mut Vec<NodeIndex>,
    ) -> bool {
        let v = *path.last().unwrap();
        if remaining == 0 {
            return v == to;
        }
        for p in 0..g.degree(v) as u32 {
            let eidx = g.edge_index_at(v, p);
            if Some(eidx) == skip_edge || !alive(eidx) {
                continue;
            }
            let w = g.neighbor_at(v, p);
            if w == to {
                if remaining == 1 {
                    path.push(w);
                    return true;
                }
                continue; // `to` may only appear as the final vertex
            }
            if visited[w as usize] {
                continue;
            }
            if dist[w as usize] == u32::MAX || dist[w as usize] as usize > remaining - 1 {
                continue;
            }
            visited[w as usize] = true;
            path.push(w);
            if dfs(g, to, remaining - 1, alive, skip_edge, dist, visited, path) {
                return true;
            }
            path.pop();
            visited[w as usize] = false;
        }
        false
    }

    if dfs(g, to, len_edges, alive, skip_edge, &dist, &mut visited, &mut path) {
        Some(path)
    } else {
        None
    }
}

/// Finds a `Ck` through the given edge, if any: a simple path of `k−1`
/// edges between the endpoints that avoids the edge itself. Returns the
/// cycle's vertex sequence starting at `e.a` and ending at `e.b`.
pub fn find_ck_through_edge(g: &Graph, k: usize, e: Edge) -> Option<Vec<NodeIndex>> {
    assert!(k >= 3);
    let eidx =
        g.edges().binary_search(&e).unwrap_or_else(|_| panic!("edge {e:?} not in graph")) as u32;
    find_path_exact(g, e.a, e.b, k - 1, &|_| true, Some(eidx))
}

/// True if some `Ck` passes through edge `e` (Lemma 2's target predicate).
pub fn has_ck_through_edge(g: &Graph, k: usize, e: Edge) -> bool {
    find_ck_through_edge(g, k, e).is_some()
}

/// Per-edge map of [`has_ck_through_edge`] over the whole edge list.
pub fn edges_on_ck(g: &Graph, k: usize) -> Vec<bool> {
    g.edges().iter().map(|&e| has_ck_through_edge(g, k, e)).collect()
}

/// Finds some `Ck` in the graph restricted to `alive` edges, as a vertex
/// sequence of length `k` (closing edge implied).
pub fn find_ck_filtered(
    g: &Graph,
    k: usize,
    alive: &dyn Fn(u32) -> bool,
) -> Option<Vec<NodeIndex>> {
    assert!(k >= 3);
    // A Ck through the lexicographically smallest of its edges: try every
    // alive edge as the anchor, searching for the completing path among
    // alive edges only.
    for (i, e) in g.edges().iter().enumerate() {
        let eidx = i as u32;
        if !alive(eidx) {
            continue;
        }
        if let Some(mut path) = find_path_exact(g, e.a, e.b, k - 1, alive, Some(eidx)) {
            // `path` = a … b of k vertices; it is the cycle.
            debug_assert_eq!(path.len(), k);
            path.dedup();
            return Some(path);
        }
    }
    None
}

/// Finds some `Ck` in the graph, if any.
pub fn find_ck(g: &Graph, k: usize) -> Option<Vec<NodeIndex>> {
    find_ck_filtered(g, k, &|_| true)
}

/// True if the graph contains a `Ck` subgraph; `Ck`-freeness is the
/// negation (Definition 1 of the paper).
pub fn contains_ck(g: &Graph, k: usize) -> bool {
    find_ck(g, k).is_some()
}

/// True if the graph is `Ck`-free.
pub fn is_ck_free(g: &Graph, k: usize) -> bool {
    !contains_ck(g, k)
}

/// Counts distinct `Ck` subgraphs (up to rotation and reflection).
///
/// Canonical form: enumerate from the smallest vertex `s` of the cycle,
/// with both cycle-neighbors of `s` larger than `s` and the second vertex
/// smaller than the last (fixing direction).
pub fn count_ck(g: &Graph, k: usize) -> u64 {
    assert!(k >= 3);
    let mut total = 0u64;
    let n = g.n();
    let mut visited = vec![false; n];
    let mut path: Vec<NodeIndex> = Vec::with_capacity(k);

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        g: &Graph,
        s: NodeIndex,
        k: usize,
        visited: &mut [bool],
        path: &mut Vec<NodeIndex>,
        total: &mut u64,
    ) {
        let v = *path.last().unwrap();
        if path.len() == k {
            // Close the cycle back to s; count once per direction class.
            // ck-lint: allow(index-literal, reason = "path.len() == k >= 3 was checked on the line above")
            if g.has_edge(v, s) && path[1] < path[k - 1] {
                *total += 1;
            }
            return;
        }
        for &w in g.neighbors(v) {
            if w <= s || visited[w as usize] {
                continue;
            }
            visited[w as usize] = true;
            path.push(w);
            dfs(g, s, k, visited, path, total);
            path.pop();
            visited[w as usize] = false;
        }
    }

    for s in 0..n as NodeIndex {
        visited[s as usize] = true;
        path.push(s);
        dfs(g, s, k, &mut visited, &mut path, &mut total);
        path.pop();
        visited[s as usize] = false;
    }
    total
}

/// Greedily packs edge-disjoint `Ck` copies: repeatedly find a `Ck` among
/// unused edges and retire its edges. Returns the copies found (each a
/// vertex sequence). The greedy packing is a ≥ 1/k-approximation of the
/// optimum, which is all the certificates here need.
pub fn greedy_ck_packing(g: &Graph, k: usize) -> Vec<Vec<NodeIndex>> {
    let mut alive = vec![true; g.m()];
    let mut copies = Vec::new();
    loop {
        let alive_ref = &alive;
        let found = find_ck_filtered(g, k, &|e| alive_ref[e as usize]);
        match found {
            None => break,
            Some(cycle) => {
                for i in 0..k {
                    let a = cycle[i];
                    let b = cycle[(i + 1) % k];
                    let e = Edge::new(a, b);
                    let idx = g.edges().binary_search(&e).expect("cycle edge exists");
                    alive[idx] = false;
                }
                copies.push(cycle);
            }
        }
    }
    copies
}

/// Certifies ε-farness from `Ck`-freeness via a greedy packing: if more
/// than `εm` edge-disjoint copies exist, no `εm`-edge modification can
/// reach `Ck`-freeness.
pub fn certify_eps_far(g: &Graph, k: usize, eps: f64) -> FarnessCertificate {
    let packing = greedy_ck_packing(g, k).len();
    let budget = (eps * g.m() as f64).floor() as usize;
    FarnessCertificate { packing, budget, certified: packing as f64 > eps * g.m() as f64 }
}

/// True if the cycle (given as its vertex sequence) has a *chord*: an
/// edge of `g` joining two non-consecutive cycle vertices.
pub fn cycle_has_chord(g: &Graph, cycle: &[NodeIndex]) -> bool {
    let k = cycle.len();
    for i in 0..k {
        for j in i + 1..k {
            let consecutive = j == i + 1 || (i == 0 && j == k - 1);
            if !consecutive && g.has_edge(cycle[i], cycle[j]) {
                return true;
            }
        }
    }
    false
}

/// Enumerates **all** `Ck` copies through edge `e` (as vertex sequences
/// from `e.a` to `e.b`); exponential in `k`, for analysis only.
pub fn enumerate_ck_through_edge(g: &Graph, k: usize, e: Edge) -> Vec<Vec<NodeIndex>> {
    assert!(k >= 3);
    let eidx = g.edges().binary_search(&e).expect("edge must exist") as u32;
    let mut found = Vec::new();
    let mut visited = vec![false; g.n()];
    let mut path = vec![e.a];
    visited[e.a as usize] = true;

    fn rec(
        g: &Graph,
        to: NodeIndex,
        remaining: usize,
        skip: u32,
        visited: &mut [bool],
        path: &mut Vec<NodeIndex>,
        found: &mut Vec<Vec<NodeIndex>>,
    ) {
        let v = *path.last().unwrap();
        for p in 0..g.degree(v) as u32 {
            if g.edge_index_at(v, p) == skip {
                continue;
            }
            let w = g.neighbor_at(v, p);
            if w == to {
                if remaining == 1 {
                    path.push(w);
                    found.push(path.clone());
                    path.pop();
                }
                continue;
            }
            if visited[w as usize] || remaining == 1 {
                continue;
            }
            visited[w as usize] = true;
            path.push(w);
            rec(g, to, remaining - 1, skip, visited, path, found);
            path.pop();
            visited[w as usize] = false;
        }
    }

    rec(g, e.b, k - 1, eidx, &mut visited, &mut path, &mut found);
    found
}

/// True if some *chorded* `Ck` passes through `e` — the pattern `H` of
/// the paper's conclusion (a k-cycle plus a chord), used by the
/// obliviousness ablation.
pub fn has_chorded_ck_through_edge(g: &Graph, k: usize, e: Edge) -> bool {
    enumerate_ck_through_edge(g, k, e).iter().any(|c| cycle_has_chord(g, c))
}

/// Validates that a vertex sequence really is a `Ck` of the graph: `k`
/// distinct vertices, consecutive pairs (and the closing pair) adjacent.
pub fn is_valid_ck(g: &Graph, k: usize, cycle: &[NodeIndex]) -> bool {
    if cycle.len() != k {
        return false;
    }
    let mut sorted = cycle.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.len() != k {
        return false;
    }
    (0..k).all(|i| g.has_edge(cycle[i], cycle[(i + 1) % k]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::{
        book, complete, complete_bipartite, cycle, cycle_cactus, figure1, grid, hypercube, path,
        petersen, theta,
    };

    #[test]
    fn cycle_contains_only_its_own_length() {
        for k in 3..9 {
            let g = cycle(k);
            for j in 3..9 {
                assert_eq!(contains_ck(&g, j), j == k, "C{k} vs C{j}");
            }
        }
    }

    #[test]
    fn complete_graph_counts_match_formula() {
        // #Ck in K_n = n! / ((n-k)! · 2k).
        let fact = |x: u64| (1..=x).product::<u64>();
        for n in 4..8u64 {
            let g = complete(n as usize);
            for k in 3..=n {
                let expected = fact(n) / (fact(n - k) * 2 * k);
                assert_eq!(count_ck(&g, k as usize), expected, "K{n}, C{k}");
            }
        }
    }

    #[test]
    fn petersen_counts() {
        let g = petersen();
        assert_eq!(count_ck(&g, 3), 0);
        assert_eq!(count_ck(&g, 4), 0);
        assert_eq!(count_ck(&g, 5), 12);
        assert_eq!(count_ck(&g, 6), 10);
    }

    #[test]
    fn hypercube_c4_count() {
        // Q3 has exactly its 6 faces as 4-cycles.
        assert_eq!(count_ck(&hypercube(3), 4), 6);
        assert_eq!(count_ck(&hypercube(3), 3), 0);
        assert_eq!(count_ck(&hypercube(3), 5), 0);
    }

    #[test]
    fn bipartite_has_no_odd_cycles() {
        let g = complete_bipartite(4, 4);
        for k in [3usize, 5, 7] {
            assert!(is_ck_free(&g, k));
        }
        assert!(contains_ck(&g, 4));
        assert!(contains_ck(&g, 6));
        assert!(contains_ck(&g, 8));
    }

    #[test]
    fn figure1_cycles_through_uv() {
        let g = figure1();
        let e = Edge::new(0, 1);
        let c = find_ck_through_edge(&g, 5, e).expect("C5 exists through {u,v}");
        assert!(is_valid_ck(&g, 5, &c));
        assert_eq!(c[0], 0);
        assert_eq!(c[4], 1);
        // The chords u-x-v / u-y-v close triangles through {u,v}, but no
        // C4 passes through it (no u→v path of exactly 3 edges).
        assert!(has_ck_through_edge(&g, 3, e));
        assert!(!has_ck_through_edge(&g, 4, e));
    }

    #[test]
    fn fan_c5_needs_two_distinct_middles() {
        use crate::basic::fan;
        let g = fan(3);
        let e = Edge::new(0, 1);
        assert!(has_ck_through_edge(&g, 5, e));
        // Each C5 through {u,v} uses two distinct middle nodes and z.
        let c = find_ck_through_edge(&g, 5, e).unwrap();
        assert!(c.contains(&(g.n() as u32 - 1)), "apex z on every C5: {c:?}");
    }

    #[test]
    fn spindle_cycle_length_is_mid_plus_four() {
        use crate::basic::spindle;
        let g = spindle(4, 2);
        let e = Edge::new(0, 1);
        assert!(has_ck_through_edge(&g, 6, e));
        assert!(!has_ck_through_edge(&g, 5, e));
        assert!(!has_ck_through_edge(&g, 4, e));
    }

    #[test]
    fn through_edge_matches_membership_on_grid() {
        let g = grid(3, 4);
        // Every edge of a grid lies on a C4 except none — all do.
        assert!(edges_on_ck(&g, 4).iter().all(|&b| b));
        // No edge lies on a C3 or C5.
        assert!(edges_on_ck(&g, 3).iter().all(|&b| !b));
        assert!(edges_on_ck(&g, 5).iter().all(|&b| !b));
        // C6s exist (2x1 sub-rectangles).
        assert!(edges_on_ck(&g, 6).iter().any(|&b| b));
    }

    #[test]
    fn path_graph_is_ck_free() {
        let g = path(12);
        for k in 3..8 {
            assert!(is_ck_free(&g, k));
        }
    }

    #[test]
    fn theta_cycles() {
        // Θ(3, 2): hub edge + 3 disjoint paths of 2 internal nodes.
        let g = theta(3, 2);
        // Path + hub edge = C4; two paths = C6.
        assert!(contains_ck(&g, 4));
        assert!(contains_ck(&g, 6));
        assert!(is_ck_free(&g, 3));
        assert!(is_ck_free(&g, 5));
        assert_eq!(count_ck(&g, 4), 3);
        assert_eq!(count_ck(&g, 6), 3); // pairs of paths
    }

    #[test]
    fn cactus_packing_is_full() {
        let g = cycle_cactus(6, 5);
        let packing = greedy_ck_packing(&g, 5);
        assert_eq!(packing.len(), 6);
        for c in &packing {
            assert!(is_valid_ck(&g, 5, c));
        }
    }

    #[test]
    fn book_packing_is_one() {
        // All pages share the spine edge {0,1}? No — pages of a book share
        // the spine, but a page cycle uses the spine edge; page cycles are
        // pairwise edge-intersecting only at the spine. Removing the spine
        // leaves paths; each pair of pages still closes a larger cycle but
        // not a C4. Greedy C4 packing must find exactly 1 copy.
        let g = book(5, 4);
        assert_eq!(greedy_ck_packing(&g, 4).len(), 1);
    }

    #[test]
    fn farness_certificate_on_cactus() {
        let g = cycle_cactus(10, 4); // m = 40 + 9 = 49, packing 10
        let cert = certify_eps_far(&g, 4, 0.1);
        assert_eq!(cert.packing, 10);
        assert_eq!(cert.budget, 4);
        assert!(cert.certified);
        let tight = certify_eps_far(&g, 4, 0.25);
        assert!(!tight.certified, "10 copies vs budget 12 is not certified");
    }

    #[test]
    fn lemma4_bound_on_certified_instances() {
        // On instances certified ε-far, the packing must be ≥ εm/k
        // (Lemma 4 gives this for *any* ε-far graph; certification implies
        // farness, so the bound must hold — a consistency check between
        // the two directions).
        let g = cycle_cactus(8, 5);
        let eps = 0.15;
        let cert = certify_eps_far(&g, 5, eps);
        assert!(cert.certified);
        let lemma4_lower = eps * g.m() as f64 / 5.0;
        assert!(cert.packing as f64 >= lemma4_lower);
    }

    #[test]
    fn find_path_exact_basics() {
        let g = path(5); // 0-1-2-3-4
        let p = find_path_exact(&g, 0, 3, 3, &|_| true, None).unwrap();
        assert_eq!(p, vec![0, 1, 2, 3]);
        assert!(find_path_exact(&g, 0, 3, 2, &|_| true, None).is_none());
        assert!(find_path_exact(&g, 0, 3, 4, &|_| true, None).is_none());
        assert_eq!(find_path_exact(&g, 2, 2, 0, &|_| true, None).unwrap(), vec![2]);
        assert!(find_path_exact(&g, 2, 2, 2, &|_| true, None).is_none());
    }

    #[test]
    fn find_path_respects_filters() {
        let g = cycle(6);
        // Path 0→3 of length 3 in both directions; kill edge {0,1}.
        let dead = g.edges().binary_search(&Edge::new(0, 1)).unwrap() as u32;
        let p = find_path_exact(&g, 0, 3, 3, &|e| e != dead, None).unwrap();
        assert_eq!(p, vec![0, 5, 4, 3]);
    }

    #[test]
    fn chord_detection() {
        // C5 plus one chord {0, 2}.
        let mut g = crate::basic::cycle(5);
        let chordless: Vec<u32> = vec![0, 1, 2, 3, 4];
        assert!(!cycle_has_chord(&g, &chordless));
        g = {
            let mut b = ck_congest::graph::GraphBuilder::new(5);
            b.edges(g.edges().iter().map(|e| (e.a, e.b)));
            b.edge(0, 2);
            b.build().unwrap()
        };
        assert!(cycle_has_chord(&g, &chordless));
    }

    #[test]
    fn enumerate_through_edge_counts() {
        // fan(3): C5s through {u,v} are ordered pairs of distinct middles:
        // u-x_i-z-x_j-v with i ≠ j → 3·2 = 6 paths.
        let g = crate::basic::fan(3);
        let e = Edge::new(0, 1);
        let all = enumerate_ck_through_edge(&g, 5, e);
        assert_eq!(all.len(), 6);
        for c in &all {
            assert!(is_valid_ck(&g, 5, c));
            assert_eq!(c[0], 0);
            assert_eq!(c[4], 1);
        }
        // Each of those C5s has chords (the second middle node touches
        // both hubs), so the chorded oracle fires.
        assert!(has_chorded_ck_through_edge(&g, 5, e));
    }

    #[test]
    fn chordless_cycles_have_no_chorded_copies() {
        let g = cycle(7);
        let e = Edge::new(0, 6);
        assert!(has_ck_through_edge(&g, 7, e));
        assert!(!has_chorded_ck_through_edge(&g, 7, e));
    }

    #[test]
    fn is_valid_ck_rejects_garbage() {
        let g = cycle(5);
        assert!(is_valid_ck(&g, 5, &[0, 1, 2, 3, 4]));
        assert!(!is_valid_ck(&g, 5, &[0, 1, 2, 3, 3]));
        assert!(!is_valid_ck(&g, 5, &[0, 1, 2, 3]));
        assert!(!is_valid_ck(&g, 5, &[0, 2, 4, 1, 3]));
    }
}
