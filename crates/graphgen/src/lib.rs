//! # ck-graphgen — workloads and oracles for distributed cycle detection
//!
//! Companion crate to the SPAA 2017 reproduction: every graph family used
//! by the tests, experiments, and benchmarks, plus the sequential oracles
//! (`Ck` existence / counting / through-edge queries) and the ε-farness
//! machinery (greedy edge-disjoint packings, farness certificates, planted
//! ε-far instances, Behrend-style spread-cycle instances).
//!
//! All random generators are deterministic in a `u64` seed.
//!
//! ```
//! use ck_graphgen::basic::cycle;
//! use ck_graphgen::farness::{contains_ck, is_ck_free};
//!
//! let g = cycle(7);
//! assert!(contains_ck(&g, 7));
//! assert!(is_ck_free(&g, 5));
//! ```

pub mod basic;
pub mod behrend;
pub mod families;
pub mod farness;
pub mod io;
pub mod mutate;
pub mod planted;
pub mod random;

pub use basic::{cycle, figure1, path, theta};
pub use farness::{
    certify_eps_far, contains_ck, count_ck, edges_on_ck, find_ck, find_ck_through_edge,
    has_ck_through_edge, is_ck_free, FarnessCertificate,
};
pub use planted::{eps_far_instance, matched_free_instance, PlantedInstance};
