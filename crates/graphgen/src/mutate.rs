//! Graph surgery: edit-distance experiments around the farness gap.
//!
//! Property testing promises nothing for instances that contain a `Ck`
//! but are *not* ε-far — the paper: "In the case of instances which are
//! nearly satisfying P but not quite, the algorithm can output either
//! ways." These utilities build such *gap* instances: start from an
//! ε-far graph and delete cycle edges until only a few copies survive,
//! or start from a free graph and inject exactly `c` copies.

// ck-lint: allow-file(no-panic, reason = "surgery rebuilds from an already-valid graph, so the edited edge list stays in range")
use ck_congest::graph::{Edge, Graph, GraphBuilder, NodeIndex};
use ck_congest::rngs::{derived_rng, labels};
use rand::RngExt;

use crate::farness::{find_ck_filtered, greedy_ck_packing};

/// Removes edges from `g` (by edge index set) and rebuilds.
pub fn remove_edges(g: &Graph, remove: &[u32]) -> Graph {
    let dead: std::collections::HashSet<u32> = remove.iter().copied().collect();
    let mut b = GraphBuilder::new(g.n());
    for (i, e) in g.edges().iter().enumerate() {
        if !dead.contains(&(i as u32)) {
            b.edge(e.a, e.b);
        }
    }
    b.ids(g.ids().to_vec());
    b.build().expect("edge removal keeps the graph valid")
}

/// Adds the given edges (ignoring duplicates) and rebuilds.
pub fn add_edges(g: &Graph, extra: &[(NodeIndex, NodeIndex)]) -> Graph {
    let mut b = GraphBuilder::new(g.n());
    b.edges(g.edges().iter().map(|e| (e.a, e.b)));
    b.edges(extra.iter().copied());
    b.ids(g.ids().to_vec());
    b.build().expect("edge addition keeps the graph valid")
}

/// Deletes one edge from every `Ck` until at most `keep` copies remain
/// (in the greedy-packing sense). Returns the surgically thinned graph
/// and the number of edges removed — a *gap* instance when `keep` is
/// small but positive: it contains a `Ck` yet is far from ε-far.
pub fn thin_to_few_cycles(g: &Graph, k: usize, keep: usize, seed: u64) -> (Graph, usize) {
    let mut rng = derived_rng(seed, labels::GRAPH_TOPOLOGY, 7, 0);
    let mut current = g.clone();
    let mut removed_total = 0;
    loop {
        let packing = greedy_ck_packing(&current, k);
        if packing.len() <= keep {
            return (current, removed_total);
        }
        // Break one copy beyond the quota by removing a random edge of it.
        let surplus = &packing[keep..];
        let victim = &surplus[rng.random_range(0..surplus.len())];
        let i = rng.random_range(0..k);
        let e = Edge::new(victim[i], victim[(i + 1) % k]);
        let idx = current.edges().binary_search(&e).expect("cycle edge exists") as u32;
        current = remove_edges(&current, &[idx]);
        removed_total += 1;
    }
}

/// Destroys **all** `Ck` copies by repeated single-edge deletion; returns
/// the `Ck`-free result and the number of removals (an upper bound on
/// the edit distance to `Ck`-freeness, hence a farness upper bound:
/// `g` is NOT ε-far for any `ε > removals / m`).
pub fn make_ck_free(g: &Graph, k: usize, seed: u64) -> (Graph, usize) {
    let mut rng = derived_rng(seed, labels::GRAPH_TOPOLOGY, 8, 0);
    let mut current = g.clone();
    let mut removed = 0;
    loop {
        let found = find_ck_filtered(&current, k, &|_| true);
        let Some(cycle) = found else {
            return (current, removed);
        };
        let i = rng.random_range(0..k);
        let e = Edge::new(cycle[i], cycle[(i + 1) % k]);
        let idx = current.edges().binary_search(&e).expect("cycle edge exists") as u32;
        current = remove_edges(&current, &[idx]);
        removed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::cycle_cactus;
    use crate::farness::{contains_ck, is_ck_free};
    use crate::planted::cycle_chain;

    #[test]
    fn remove_and_add_round_trip() {
        let g = cycle_cactus(3, 4);
        let removed = remove_edges(&g, &[0]);
        assert_eq!(removed.m(), g.m() - 1);
        let (a, b) = (g.edges()[0].a, g.edges()[0].b);
        let back = add_edges(&removed, &[(a, b)]);
        assert_eq!(back.edges(), g.edges());
        assert_eq!(back.ids(), g.ids());
    }

    #[test]
    fn thinning_reaches_the_quota() {
        let inst = cycle_chain(8, 5);
        let (thin, removed) = thin_to_few_cycles(&inst.graph, 5, 2, 3);
        assert_eq!(greedy_ck_packing(&thin, 5).len(), 2);
        assert!(contains_ck(&thin, 5));
        assert!(removed >= 6, "one removal per surplus copy at least");
    }

    #[test]
    fn make_free_removes_all_copies() {
        let inst = cycle_chain(5, 4);
        let (free, removed) = make_ck_free(&inst.graph, 4, 1);
        assert!(is_ck_free(&free, 4));
        assert!(removed >= 5, "at least one removal per planted copy");
        // Edit distance certificate: removing `removed` edges sufficed.
        assert!(free.m() + removed == inst.graph.m());
    }

    #[test]
    fn thinning_to_zero_equals_freeness() {
        let inst = cycle_chain(4, 6);
        let (thin, _) = thin_to_few_cycles(&inst.graph, 6, 0, 9);
        // keep = 0: greedy packing empty ⟺ no copy survives the greedy
        // search ⟹ graph is Ck-free (greedy finds a copy iff one exists).
        assert!(is_ck_free(&thin, 6));
    }
}
