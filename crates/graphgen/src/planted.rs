//! Planted ε-far instances.
//!
//! The detection side of Theorem 1 is only promised on graphs ε-far from
//! `Ck`-free. These generators build instances whose farness is
//! *certified by construction*: they plant vertex-disjoint `Ck` copies
//! (vertex-disjoint ⟹ edge-disjoint), so destroying all planted copies
//! costs one edge-removal each, and the instance is ε-far whenever
//! `copies > εm`.

// ck-lint: allow-file(no-panic, reason = "planted instances compose validated generators, so construction failure is a generator bug")
use ck_congest::graph::{Graph, GraphBuilder, NodeIndex};
use ck_congest::rngs::{derived_rng, labels};
use rand::RngExt;

use crate::farness::certify_eps_far;

/// A planted instance together with its farness certificate data.
#[derive(Clone, Debug)]
pub struct PlantedInstance {
    pub graph: Graph,
    /// Vertex sets of the planted (vertex-disjoint) copies.
    pub planted: Vec<Vec<NodeIndex>>,
    /// Largest ε for which `planted > εm` holds, i.e. the instance is
    /// certifiably ε-far for every ε strictly below this value.
    pub max_certified_eps: f64,
}

/// `count` vertex-disjoint `Ck` copies chained by bridge edges into one
/// connected graph (a `Ck`-cactus). `m = count·k + (count−1)`, packing
/// number exactly `count`, so the instance is ε-far for all
/// `ε < count/m ≈ 1/(k+1)`.
pub fn cycle_chain(count: usize, k: usize) -> PlantedInstance {
    assert!(count >= 1 && k >= 3);
    let n = count * k;
    let mut b = GraphBuilder::new(n);
    let mut planted = Vec::with_capacity(count);
    for c in 0..count {
        let base = (c * k) as NodeIndex;
        let copy: Vec<NodeIndex> = (0..k).map(|i| base + i as NodeIndex).collect();
        for i in 0..k {
            b.edge(copy[i], copy[(i + 1) % k]);
        }
        if c + 1 < count {
            b.edge(base, base + k as NodeIndex);
        }
        planted.push(copy);
    }
    let graph = b.build().expect("cycle chain is valid");
    let m = graph.m() as f64;
    PlantedInstance { max_certified_eps: count as f64 / m, planted, graph }
}

/// Plants `count` vertex-disjoint `Ck` copies on top of a host graph: the
/// host provides background traffic (extra edges, higher degrees, other
/// cycle lengths), the planted copies provide the farness certificate.
///
/// The planted copies are vertex-disjoint among themselves (hence
/// edge-disjoint) but may reuse host edges; reuse does not weaken the
/// certificate because a removed edge still kills at most one planted
/// copy.
pub fn plant_on_host(host: &Graph, k: usize, count: usize, seed: u64) -> PlantedInstance {
    assert!(k >= 3);
    assert!(
        count * k <= host.n(),
        "cannot plant {count} vertex-disjoint C{k} copies on {} nodes",
        host.n()
    );
    let mut rng = derived_rng(seed, labels::GRAPH_TOPOLOGY, 6, 0);
    // Random sample of count*k distinct vertices via partial Fisher–Yates.
    let n = host.n();
    let mut perm: Vec<NodeIndex> = (0..n as NodeIndex).collect();
    for i in 0..count * k {
        let j = rng.random_range(i..n);
        perm.swap(i, j);
    }
    let mut b = GraphBuilder::new(n);
    b.edges(host.edges().iter().map(|e| (e.a, e.b)));
    let mut planted = Vec::with_capacity(count);
    for c in 0..count {
        let copy: Vec<NodeIndex> = perm[c * k..(c + 1) * k].to_vec();
        for i in 0..k {
            b.edge(copy[i], copy[(i + 1) % k]);
        }
        planted.push(copy);
    }
    let graph = b.build().expect("planted graph is valid");
    let m = graph.m() as f64;
    PlantedInstance { max_certified_eps: count as f64 / m, planted, graph }
}

/// Builds an instance that is certifiably ε-far from `Ck`-free with
/// roughly `n` nodes: chooses the number of chained copies so that the
/// certificate holds with margin, then asserts it via the generic
/// certifier. Panics if `eps` is infeasible for a chain (ε must be below
/// `1/(k+1)`; the paper's property-testing regime is small ε).
pub fn eps_far_instance(n: usize, k: usize, eps: f64, seed: u64) -> PlantedInstance {
    assert!(eps > 0.0 && eps < 1.0);
    let chain_eps_cap = 1.0 / (k as f64 + 1.0);
    assert!(
        eps < chain_eps_cap,
        "cycle chains certify ε only below 1/(k+1) = {chain_eps_cap:.3}; got {eps}"
    );
    let count = (n / k).max(1);
    // The tree-host flavor roughly doubles m (host tree + planted copies),
    // so it can only certify ε below ≈ 1/(2k+1); fall back to the chain
    // when ε is too large for it.
    let host_cap = 1.0 / (2.0 * k as f64 + 1.0);
    let inst = if seed % 2 == 1 && eps < 0.9 * host_cap {
        // Alternate flavor: plant on a random tree host (connected, no
        // extra cycles), same certificate structure but irregular degrees.
        let host = crate::random::random_tree(count * k, seed);
        plant_on_host(&host, k, count, seed)
    } else {
        cycle_chain(count, k)
    };
    assert!(
        inst.max_certified_eps > eps,
        "construction must certify ε = {eps}, max is {}",
        inst.max_certified_eps
    );
    let cert = certify_eps_far(&inst.graph, k, eps);
    assert!(cert.certified, "generated instance failed its own certificate");
    inst
}

/// A `Ck`-free control matched in size to [`eps_far_instance`]: chains of
/// `C_{k+1}` blocks (girth `k+1`, so `Cj`-free for all `j ≤ k`).
pub fn matched_free_instance(n: usize, k: usize) -> Graph {
    let count = (n / (k + 1)).max(1);
    crate::basic::cycle_cactus(count, k + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::farness::{contains_ck, greedy_ck_packing, is_ck_free, is_valid_ck};
    use crate::random::random_tree;

    #[test]
    fn cycle_chain_certificate() {
        let inst = cycle_chain(8, 5);
        assert_eq!(inst.graph.n(), 40);
        assert_eq!(inst.graph.m(), 47);
        assert_eq!(inst.planted.len(), 8);
        assert!(inst.graph.is_connected());
        let packing = greedy_ck_packing(&inst.graph, 5);
        assert_eq!(packing.len(), 8);
        assert!((inst.max_certified_eps - 8.0 / 47.0).abs() < 1e-12);
    }

    #[test]
    fn planted_copies_are_valid_cycles() {
        let host = random_tree(60, 3);
        let inst = plant_on_host(&host, 4, 5, 9);
        for copy in &inst.planted {
            assert!(is_valid_ck(&inst.graph, 4, copy));
        }
        assert!(contains_ck(&inst.graph, 4));
        // Host edges preserved.
        for e in host.edges() {
            assert!(inst.graph.has_edge(e.a, e.b));
        }
    }

    #[test]
    fn eps_far_instance_is_far_and_control_is_free() {
        for k in 3..7 {
            for seed in 0..2u64 {
                let inst = eps_far_instance(60, k, 0.05, seed);
                assert!(contains_ck(&inst.graph, k));
                let free = matched_free_instance(60, k);
                assert!(is_ck_free(&free, k), "control must be C{k}-free");
            }
        }
    }

    #[test]
    #[should_panic(expected = "cycle chains certify")]
    fn eps_far_rejects_infeasible_eps() {
        let _ = eps_far_instance(60, 5, 0.5, 0);
    }

    #[test]
    #[should_panic(expected = "cannot plant")]
    fn plant_on_host_checks_capacity() {
        let host = random_tree(10, 0);
        let _ = plant_on_host(&host, 5, 3, 0);
    }
}
