//! Random graph models, all seed-deterministic.
//!
//! Every generator consumes a `u64` seed and derives its stream through
//! [`ck_congest::rngs`], so a (family, parameters, seed) triple pins the
//! topology exactly across test, experiment, and bench runs.

// ck-lint: allow-file(no-panic, reason = "samplers draw in-range endpoints and retry rejected attempts, so build() only fails on a generator bug; the pairing-model panic is a documented attempt-budget exhaustion")
use ck_congest::graph::{Graph, GraphBuilder, NodeIndex};
use ck_congest::rngs::{derived_rng, labels};
use rand::RngExt;
use std::collections::HashSet;

/// Erdős–Rényi `G(n, p)`: every pair independently an edge.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p));
    let mut rng = derived_rng(seed, labels::GRAPH_TOPOLOGY, 0, 0);
    let mut b = GraphBuilder::new(n);
    for i in 0..n as NodeIndex {
        for j in (i + 1)..n as NodeIndex {
            if rng.random_bool(p) {
                b.edge(i, j);
            }
        }
    }
    b.build().expect("gnp is valid")
}

/// Uniform `G(n, m)`: exactly `m` distinct edges sampled uniformly.
pub fn gnm(n: usize, m: usize, seed: u64) -> Graph {
    let max_m = n * (n.saturating_sub(1)) / 2;
    assert!(m <= max_m, "requested {m} edges but K_{n} has only {max_m}");
    let mut rng = derived_rng(seed, labels::GRAPH_TOPOLOGY, 1, 0);
    let mut chosen: HashSet<(NodeIndex, NodeIndex)> = HashSet::with_capacity(m);
    while chosen.len() < m {
        let i = rng.random_range(0..n) as NodeIndex;
        let j = rng.random_range(0..n) as NodeIndex;
        if i == j {
            continue;
        }
        let e = if i < j { (i, j) } else { (j, i) };
        chosen.insert(e);
    }
    let mut b = GraphBuilder::new(n);
    b.edges(chosen);
    b.build().expect("gnm is valid")
}

/// A uniformly random labeled tree on `n` nodes via a random Prüfer
/// sequence. Always connected and cycle-free.
pub fn random_tree(n: usize, seed: u64) -> Graph {
    assert!(n >= 1);
    if n == 1 {
        return GraphBuilder::new(1).build().unwrap();
    }
    if n == 2 {
        return GraphBuilder::new(2).edges([(0, 1)]).build().unwrap();
    }
    let mut rng = derived_rng(seed, labels::GRAPH_TOPOLOGY, 2, 0);
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.random_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &p in &prufer {
        degree[p] += 1;
    }
    let mut b = GraphBuilder::new(n);
    let mut leaf_heap: std::collections::BinaryHeap<std::cmp::Reverse<usize>> =
        (0..n).filter(|&v| degree[v] == 1).map(std::cmp::Reverse).collect();
    for &p in &prufer {
        let std::cmp::Reverse(leaf) = leaf_heap.pop().expect("tree always has a leaf");
        b.edge(leaf as NodeIndex, p as NodeIndex);
        degree[p] -= 1;
        if degree[p] == 1 {
            leaf_heap.push(std::cmp::Reverse(p));
        }
    }
    let rest: Vec<usize> = (0..n).filter(|&v| degree[v] == 1).collect();
    // After consuming the Prüfer sequence exactly two nodes remain; the
    // heap-based elimination leaves them with residual degree 1.
    let (u, v) = (rest[rest.len() - 2], rest[rest.len() - 1]);
    b.edge(u as NodeIndex, v as NodeIndex);
    b.build().expect("tree is valid")
}

/// A connected `G(n, m)`-style graph: a random spanning tree plus
/// `m − (n−1)` extra uniform edges (requires `m ≥ n−1`).
pub fn connected_gnm(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m + 1 >= n, "need at least n-1 edges for connectivity");
    let tree = random_tree(n, seed);
    let mut chosen: HashSet<(NodeIndex, NodeIndex)> =
        tree.edges().iter().map(|e| (e.a, e.b)).collect();
    let mut rng = derived_rng(seed, labels::GRAPH_TOPOLOGY, 3, 0);
    let max_m = n * (n - 1) / 2;
    assert!(m <= max_m);
    while chosen.len() < m {
        let i = rng.random_range(0..n) as NodeIndex;
        let j = rng.random_range(0..n) as NodeIndex;
        if i == j {
            continue;
        }
        chosen.insert(if i < j { (i, j) } else { (j, i) });
    }
    let mut b = GraphBuilder::new(n);
    b.edges(chosen);
    b.build().expect("connected gnm is valid")
}

/// Random `d`-regular graph via the pairing model with restarts (requires
/// `n·d` even, `d < n`). Suitable for the moderate sizes of the harness.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    assert!((n * d).is_multiple_of(2), "n*d must be even");
    assert!(d < n, "degree must be below n");
    'attempt: for attempt in 0..10_000u64 {
        let mut rng = derived_rng(seed, labels::GRAPH_TOPOLOGY, 4, attempt);
        let mut stubs: Vec<NodeIndex> =
            (0..n as NodeIndex).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        // Fisher–Yates shuffle.
        for i in (1..stubs.len()).rev() {
            let j = rng.random_range(0..=i);
            stubs.swap(i, j);
        }
        let mut seen = HashSet::with_capacity(n * d / 2);
        for pair in stubs.chunks(2) {
            // ck-lint: allow(index-literal, reason = "stubs has even length n*d, so chunks(2) yields exactly-two-element slices")
            let (x, y) = (pair[0], pair[1]);
            if x == y {
                continue 'attempt;
            }
            let e = if x < y { (x, y) } else { (y, x) };
            if !seen.insert(e) {
                continue 'attempt;
            }
        }
        let mut b = GraphBuilder::new(n);
        b.edges(seen);
        return b.build().expect("regular graph is valid");
    }
    panic!("pairing model failed to produce a simple {d}-regular graph on {n} nodes");
}

/// Random graph of girth `> k` built by incremental insertion: a uniformly
/// random candidate edge `{u, v}` is kept only when the current distance
/// `dist(u, v) ≥ k`, so every cycle it closes has length ≥ `k+1`. Since any
/// cycle of the final graph goes through the last of its edges inserted,
/// all cycles are longer than `k`: the result is certifiably `Cj`-free for
/// every `j ≤ k`.
///
/// `attempts` candidate edges are drawn; the density achieved depends on
/// `n` and `k` (higher girth ⟹ necessarily sparser).
pub fn high_girth(n: usize, k: usize, attempts: usize, seed: u64) -> Graph {
    let mut rng = derived_rng(seed, labels::GRAPH_TOPOLOGY, 5, 0);
    let mut adj: Vec<Vec<NodeIndex>> = vec![Vec::new(); n];
    let mut edges: Vec<(NodeIndex, NodeIndex)> = Vec::new();
    let mut dist = vec![u32::MAX; n];
    let mut touched: Vec<usize> = Vec::new();
    for _ in 0..attempts {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u == v {
            continue;
        }
        // Bounded BFS from u to depth k−1: if v is reached the new edge
        // would close a cycle of length ≤ k.
        for &t in &touched {
            dist[t] = u32::MAX;
        }
        touched.clear();
        dist[u] = 0;
        touched.push(u);
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(u);
        let mut reachable = false;
        'bfs: while let Some(x) = queue.pop_front() {
            if dist[x] as usize >= k - 1 {
                continue;
            }
            for &y in &adj[x] {
                if dist[y as usize] == u32::MAX {
                    dist[y as usize] = dist[x] + 1;
                    touched.push(y as usize);
                    if y as usize == v {
                        reachable = true;
                        break 'bfs;
                    }
                    queue.push_back(y as usize);
                }
            }
        }
        if reachable {
            continue;
        }
        adj[u].push(v as NodeIndex);
        adj[v].push(u as NodeIndex);
        edges.push((u as NodeIndex, v as NodeIndex));
    }
    let mut b = GraphBuilder::new(n);
    b.edges(edges);
    b.build().expect("high girth graph is valid")
}

/// Assigns fresh random distinct IDs in `[0, n²)` (polynomial range, as the
/// model allows) to an existing graph.
pub fn randomize_ids(g: &Graph, seed: u64) -> Graph {
    let n = g.n();
    let range = (n as u64).saturating_mul(n as u64).max(n as u64 + 1);
    let mut rng = derived_rng(seed, labels::GRAPH_IDS, 0, 0);
    let mut used = HashSet::with_capacity(n);
    let mut ids = Vec::with_capacity(n);
    while ids.len() < n {
        let id = rng.random_range(0..range);
        if used.insert(id) {
            ids.push(id);
        }
    }
    g.with_ids(ids).expect("generated IDs are distinct")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnp_is_deterministic() {
        let a = gnp(40, 0.15, 7);
        let b = gnp(40, 0.15, 7);
        assert_eq!(a.edges(), b.edges());
        let c = gnp(40, 0.15, 8);
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 1).m(), 0);
        assert_eq!(gnp(10, 1.0, 1).m(), 45);
    }

    #[test]
    fn gnm_exact_edge_count() {
        for &m in &[0usize, 1, 10, 40] {
            assert_eq!(gnm(12, m, 3).m(), m);
        }
    }

    #[test]
    fn random_tree_is_tree() {
        for seed in 0..10 {
            let t = random_tree(30, seed);
            assert_eq!(t.m(), 29);
            assert!(t.is_connected());
            assert_eq!(t.girth(), None);
        }
    }

    #[test]
    fn random_tree_tiny() {
        assert_eq!(random_tree(1, 0).m(), 0);
        assert_eq!(random_tree(2, 0).m(), 1);
        let t3 = random_tree(3, 5);
        assert_eq!(t3.m(), 2);
        assert!(t3.is_connected());
    }

    #[test]
    fn connected_gnm_is_connected() {
        for seed in 0..8 {
            let g = connected_gnm(25, 40, seed);
            assert_eq!(g.m(), 40);
            assert!(g.is_connected());
        }
    }

    #[test]
    fn random_regular_degrees() {
        let g = random_regular(20, 3, 11);
        assert!((0..20).all(|v| g.degree(v) == 3));
        assert_eq!(g.m(), 30);
    }

    #[test]
    fn high_girth_certified() {
        for k in 3..7 {
            let g = high_girth(60, k, 600, 5);
            if let Some(girth) = g.girth() {
                assert!(girth > k as u32, "girth {girth} must exceed {k}");
            }
            assert!(g.m() > 0, "generator produced an empty graph");
        }
    }

    #[test]
    fn randomize_ids_preserves_topology() {
        let g = gnp(20, 0.3, 2);
        let h = randomize_ids(&g, 99);
        assert_eq!(g.edges(), h.edges());
        let mut ids = h.ids().to_vec();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), h.n());
        assert!(ids.iter().all(|&i| i < (20 * 20) as u64));
    }
}
