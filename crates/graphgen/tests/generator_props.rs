//! Generator property tests: every family delivers what its docstring
//! promises, across parameters and seeds.

use ck_congest::topology::{is_bipartite, triangle_count};
use ck_graphgen::basic::{book, cycle_cactus, fan, spindle, theta};
use ck_graphgen::families::{circulant, random_bipartite};
use ck_graphgen::farness::{contains_ck, count_ck, greedy_ck_packing, is_ck_free};
use ck_graphgen::mutate::{make_ck_free, thin_to_few_cycles};
use ck_graphgen::planted::{cycle_chain, plant_on_host};
use ck_graphgen::random::{connected_gnm, gnm, gnp, high_girth, random_regular, random_tree};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    /// gnp/gnm/tree determinism and basic invariants.
    #[test]
    fn random_models_are_deterministic(n in 4usize..30, seed in any::<u64>()) {
        let a = gnp(n, 0.3, seed);
        let b = gnp(n, 0.3, seed);
        prop_assert_eq!(a.edges(), b.edges());
        let m = n; // a feasible edge count for n ≥ 4
        let g = gnm(n, m, seed);
        prop_assert_eq!(g.m(), m);
        let t = random_tree(n, seed);
        prop_assert_eq!(t.m(), n - 1);
        prop_assert!(t.is_connected());
        prop_assert_eq!(t.girth(), None);
    }

    /// connected_gnm really is connected with the exact edge budget.
    #[test]
    fn connected_gnm_invariants(n in 4usize..24, extra in 0usize..10, seed in any::<u64>()) {
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        let g = connected_gnm(n, m, seed);
        prop_assert!(g.is_connected());
        prop_assert_eq!(g.m(), m);
    }

    /// Regular graphs are regular.
    #[test]
    fn regular_is_regular(half_n in 3usize..10, d in 2usize..4, seed in any::<u64>()) {
        let n = 2 * half_n; // even n·d guaranteed
        prop_assume!(d < n);
        let g = random_regular(n, d, seed);
        prop_assert!((0..n).all(|v| g.degree(v as u32) == d));
    }

    /// high_girth(k) is Cj-free for every j ≤ k.
    #[test]
    fn high_girth_is_certified(n in 10usize..40, k in 3usize..7, seed in any::<u64>()) {
        let g = high_girth(n, k, 250, seed);
        for j in 3..=k {
            prop_assert!(is_ck_free(&g, j), "C{} in a girth->{} graph", j, k);
        }
    }

    /// Planted chains: packing exactly equals the planted count and the
    /// certificate bound holds.
    #[test]
    fn chain_packing_is_exact(count in 2usize..8, k in 3usize..7) {
        let inst = cycle_chain(count, k);
        prop_assert_eq!(greedy_ck_packing(&inst.graph, k).len(), count);
        prop_assert!(inst.max_certified_eps > 0.0);
        prop_assert!(contains_ck(&inst.graph, k));
    }

    /// Planted-on-host copies survive and stay vertex-disjoint.
    #[test]
    fn plant_on_host_valid(count in 1usize..4, k in 3usize..6, seed in any::<u64>()) {
        let host = random_tree(count * k + 5, seed);
        let inst = plant_on_host(&host, k, count, seed);
        prop_assert_eq!(inst.planted.len(), count);
        let mut all: Vec<u32> = inst.planted.iter().flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), count * k, "planted copies must be vertex-disjoint");
    }

    /// Bipartite generator: no odd cycles ever.
    #[test]
    fn bipartite_generator_is_bipartite(a in 2usize..8, b in 2usize..8, seed in any::<u64>()) {
        let g = random_bipartite(a, b, 0.5, seed);
        prop_assert!(is_bipartite(&g));
        prop_assert_eq!(triangle_count(&g), 0);
    }

    /// Mutations: thinning hits its quota; freeing frees.
    #[test]
    fn mutations_do_what_they_say(count in 3usize..7, k in 4usize..6, seed in any::<u64>()) {
        let inst = cycle_chain(count, k);
        let keep = count / 2;
        let (thin, removed) = thin_to_few_cycles(&inst.graph, k, keep, seed);
        prop_assert_eq!(greedy_ck_packing(&thin, k).len(), keep);
        prop_assert!(removed >= count - keep);
        let (free, removals) = make_ck_free(&inst.graph, k, seed);
        prop_assert!(is_ck_free(&free, k));
        prop_assert!(removals >= count);
    }
}

/// Structured-family exact counts (deterministic, so plain tests).
#[test]
fn structured_counts_are_exact() {
    // theta(p, len): C_{len+2} count = p (path + hub edge), C_{2len+2}
    // count = C(p, 2) (pairs of paths).
    for p in 2..5usize {
        for len in 1..4usize {
            let g = theta(p, len);
            assert_eq!(count_ck(&g, len + 2) as usize, p, "theta({p},{len}) short cycles");
            if 2 * len + 2 != len + 2 {
                assert_eq!(
                    count_ck(&g, 2 * len + 2) as usize,
                    p * (p - 1) / 2,
                    "theta({p},{len}) long cycles"
                );
            }
        }
    }
    // book(pages, k): every page is one Ck through the spine.
    for pages in 1..5usize {
        let g = book(pages, 5);
        assert_eq!(count_ck(&g, 5) as usize, pages);
    }
    // fan(p): each unordered middle pair {x_i, x_j} closes TWO distinct
    // C5s (u–x_i–z–x_j–v and u–x_j–z–x_i–v use different hub chords), so
    // the count is 2·C(p, 2) = p·(p−1).
    assert_eq!(count_ck(&fan(2), 5), 2);
    assert_eq!(count_ck(&fan(3), 5), 6);
    // spindle(p, mid): cycles through the hub edge = p² (x, y pairs).
    let g = spindle(3, 2);
    assert_eq!(count_ck(&g, 6), 9);
    // cactus blocks.
    assert_eq!(count_ck(&cycle_cactus(4, 7), 7), 4);
    // circulant C9(1, 2) triangle count: each i gives triangle
    // (i, i+1, i+2) — 9 of them.
    assert_eq!(count_ck(&circulant(9, &[1, 2]), 3), 9);
}
