//! The dynamic-analysis companion to the static rules: a counting
//! global allocator for *zero-steady-state-allocation* regression
//! tests.
//!
//! The engine's warm paths (`Session::run_into` reruns,
//! `TesterSession::test_into` reruns, `SeqPool` take/return cycles)
//! are documented as allocation-free once warmed. This module turns
//! that prose claim into a CI-checkable fact: a test binary installs
//! [`CountingAlloc`] as its `#[global_allocator]`, warms the path
//! under test, snapshots the counters with [`AllocGate::snapshot`],
//! reruns, and asserts `delta().allocs == 0`.
//!
//! Compiled only under the `alloc-gate` cargo feature because
//! installing a global allocator is a per-binary decision the ordinary
//! test and bench binaries must not inherit.
//!
//! ```ignore
//! use ck_lint::alloc_gate::{AllocGate, CountingAlloc};
//!
//! #[global_allocator]
//! static ALLOC: CountingAlloc = CountingAlloc::new();
//!
//! // warm the path, then:
//! let gate = AllocGate::snapshot();
//! run_warm_path_again();
//! assert_eq!(gate.delta().allocs, 0);
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters since process start. `Relaxed` ordering is
/// enough: the gate tests are single-threaded around the measured
/// region, and the counters are statistics, not synchronization.
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// When nonzero, only allocations made by the thread whose
/// [`TLS_ANCHOR`] sits at this address are counted. The zero-alloc
/// contracts under test are all *single-threaded* warm paths
/// (sequential executor, pool take/return on one thread), but the
/// test harness itself owns background threads that allocate at
/// unpredictable times — libtest's coordinator fires a small burst
/// tens of milliseconds into a run — and a process-global count turns
/// that into a flake. Pinning scopes the gate to the thread whose
/// behaviour is actually being asserted.
static PINNED: AtomicU64 = AtomicU64::new(0);

// One byte of thread-local storage whose *address* identifies the
// thread: reading it never allocates, which is the property that
// makes it usable inside the allocator itself.
thread_local! {
    static TLS_ANCHOR: u8 = const { 0u8 };
}

fn anchor_addr() -> u64 {
    // During thread teardown TLS may be gone; such allocations can
    // never belong to the pinned gate thread, so 0 (≠ any live pin)
    // is the right answer.
    TLS_ANCHOR.try_with(|a| a as *const u8 as u64).unwrap_or(0)
}

fn counted() -> bool {
    let pin = PINNED.load(Ordering::Relaxed);
    pin == 0 || anchor_addr() == pin
}

/// A [`GlobalAlloc`] that forwards to [`System`] and counts every
/// call. Install as `#[global_allocator]` in the test binary that
/// asserts zero-steady-state allocation.
pub struct CountingAlloc;

impl CountingAlloc {
    pub const fn new() -> Self {
        CountingAlloc
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: all four methods forward verbatim to `System`, which
// upholds the GlobalAlloc contract; the only additions are Relaxed
// atomic increments, which neither allocate nor unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: contract inherited verbatim from `GlobalAlloc::alloc`;
    // this wrapper adds no obligations of its own.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counted() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        // SAFETY: `layout` is the caller's layout, passed through
        // unchanged to the system allocator.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: contract inherited verbatim from `GlobalAlloc::dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if counted() {
            DEALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: `ptr`/`layout` come from a prior `alloc` with the
        // same layout, per the caller's GlobalAlloc obligations.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: contract inherited verbatim from `GlobalAlloc::realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counted() {
            REALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        }
        // SAFETY: caller obligations forwarded unchanged to the
        // system allocator.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: contract inherited verbatim from
    // `GlobalAlloc::alloc_zeroed`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if counted() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        // SAFETY: `layout` forwarded unchanged.
        unsafe { System.alloc_zeroed(layout) }
    }
}

/// A point-in-time reading of the allocator counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// `alloc` + `alloc_zeroed` calls.
    pub allocs: u64,
    /// `dealloc` calls.
    pub deallocs: u64,
    /// `realloc` calls (counted separately: a realloc on a warm path
    /// is still a heap interaction the gate must see).
    pub reallocs: u64,
    /// Bytes requested across alloc/alloc_zeroed/realloc.
    pub bytes: u64,
}

impl AllocStats {
    /// Total heap interactions — the number the gate tests assert is
    /// zero across a warm rerun.
    pub fn heap_ops(&self) -> u64 {
        self.allocs + self.reallocs
    }
}

/// Snapshot-and-diff handle over the global counters.
#[derive(Debug, Clone, Copy)]
pub struct AllocGate {
    at: AllocStats,
}

impl AllocGate {
    /// Reads the counters now; later [`delta`](Self::delta) calls
    /// report growth since this point.
    pub fn snapshot() -> Self {
        AllocGate { at: Self::current() }
    }

    /// Restricts the counters to allocations made by the calling
    /// thread. Call once at the top of a gate test: the asserted
    /// contracts are single-threaded warm paths, and without the pin
    /// the harness's own background threads can land allocations
    /// inside a measured region and fail the gate spuriously.
    pub fn pin_to_current_thread() {
        PINNED.store(anchor_addr(), Ordering::Relaxed);
    }

    /// Lifts a [`pin_to_current_thread`](Self::pin_to_current_thread)
    /// back to process-global counting.
    pub fn unpin() {
        PINNED.store(0, Ordering::Relaxed);
    }

    /// The raw monotonic counters.
    pub fn current() -> AllocStats {
        AllocStats {
            allocs: ALLOCS.load(Ordering::Relaxed),
            deallocs: DEALLOCS.load(Ordering::Relaxed),
            reallocs: REALLOCS.load(Ordering::Relaxed),
            bytes: BYTES.load(Ordering::Relaxed),
        }
    }

    /// Counter growth since the snapshot.
    pub fn delta(&self) -> AllocStats {
        let now = Self::current();
        AllocStats {
            allocs: now.allocs - self.at.allocs,
            deallocs: now.deallocs - self.at.deallocs,
            reallocs: now.reallocs - self.at.reallocs,
            bytes: now.bytes - self.at.bytes,
        }
    }
}
