//! The `ck-lint` binary: lint the workspace (or a given root), print
//! `file:line: [rule] message` diagnostics, exit nonzero on findings.
//!
//! ```text
//! ck-lint [ROOT]        # ROOT defaults to the workspace root
//! ```
//!
//! The workspace root is auto-discovered by walking up from the
//! current directory to the first `Cargo.toml` containing a
//! `[workspace]` table, so the tool behaves the same from any crate
//! subdirectory and from CI's checkout root.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn main() -> ExitCode {
    let arg_root = std::env::args().nth(1).map(PathBuf::from);
    let root = match arg_root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("ck-lint: cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "ck-lint: no workspace root found above {} (pass one explicitly)",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let findings = match ck_lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("ck-lint: walk failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if findings.is_empty() {
        println!("ck-lint: clean ({} ok)", root.display());
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        println!("{f}");
    }
    println!("ck-lint: {} finding(s)", findings.len());
    ExitCode::FAILURE
}
