//! A minimal Rust surface lexer: separates *code* from *comments* and
//! blanks out literal contents, line by line.
//!
//! The rule engine ([`crate::rules`]) works on token-level facts — "the
//! word `unsafe` appears on line 17", "`// SAFETY:` precedes it" — so
//! it needs exactly one thing from the lexer: a per-line view where
//!
//! * comment text is removed from the code channel and collected in a
//!   comment channel (so `// SAFETY:` and `// ck-lint: allow(...)`
//!   markers are searchable without false-positiving on code), and
//! * string/char literal *contents* are blanked (so a fixture string
//!   containing `unwrap()` or a log message containing `unsafe` never
//!   trips a rule).
//!
//! Everything subtle about that separation is Rust's lexical grammar:
//! nested block comments, raw strings with arbitrary `#` fences (whose
//! bodies may contain `"` and `//`), byte strings, escaped quotes, and
//! the `'` ambiguity between char literals (`'a'`, `'\n'`) and
//! lifetimes (`'a`, `'static`). This lexer resolves all of those with
//! a hand-rolled state machine; it deliberately does **not** parse —
//! no AST, no macro expansion — because every invariant the rules
//! enforce is phrased on the token surface.

/// One source line after lexing: code with literal contents blanked,
/// plus all comment text that appeared on the line.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MaskedLine {
    /// The line's code channel: comments stripped, string/char literal
    /// contents replaced by spaces (delimiters kept, so tokenization
    /// still sees that a literal sat there).
    pub code: String,
    /// Concatenated text of every comment on the line (line comments,
    /// doc comments, and the per-line slices of block comments),
    /// including the comment sigils themselves.
    pub comment: String,
}

impl MaskedLine {
    /// True when the line carries no code at all (blank, or
    /// comment-only).
    pub fn is_code_blank(&self) -> bool {
        self.code.trim().is_empty()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    /// Nested depth.
    BlockComment(u32),
    /// `expect_escapes` is false inside raw strings; `fence` is the
    /// number of `#` characters that (with a `"`) terminate the
    /// literal.
    Str {
        raw_fence: Option<u32>,
    },
    CharLit,
}

/// Lexes `src` into per-line code/comment channels. Total: any byte
/// sequence produces one [`MaskedLine`] per input line (unterminated
/// literals or comments simply run to EOF in their state).
pub fn mask_source(src: &str) -> Vec<MaskedLine> {
    let mut lines: Vec<MaskedLine> = Vec::new();
    let mut cur = MaskedLine::default();
    let mut state = State::Code;

    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let n = chars.len();

    macro_rules! newline {
        () => {{
            lines.push(std::mem::take(&mut cur));
        }};
    }

    while i < n {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            newline!();
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && i + 1 < n && chars[i + 1] == '/' {
                    state = State::LineComment;
                    cur.comment.push_str("//");
                    i += 2;
                } else if c == '/' && i + 1 < n && chars[i + 1] == '*' {
                    state = State::BlockComment(1);
                    cur.comment.push_str("/*");
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Str { raw_fence: None };
                    i += 1;
                } else if c == '\'' {
                    // Char literal vs lifetime. `'\...'` is always a
                    // char; `'X'` is a char; `'ident` (not followed by
                    // a closing quote after one char) is a lifetime.
                    let next = chars.get(i + 1).copied();
                    let after = chars.get(i + 2).copied();
                    let is_char = match next {
                        Some('\\') => true,
                        Some(x) if x != '\'' => after == Some('\''),
                        _ => false,
                    };
                    cur.code.push('\'');
                    i += 1;
                    if is_char {
                        state = State::CharLit;
                    }
                    // else: lifetime — keep lexing the identifier as
                    // ordinary code.
                } else if is_ident_start(c) {
                    // Consume a whole identifier so raw/byte string
                    // prefixes (`r"`, `r#"`, `b"`, `br#"`) are detected
                    // as units and `r` / `b` inside longer identifiers
                    // are not.
                    let start = i;
                    while i < n && is_ident_continue(chars[i]) {
                        i += 1;
                    }
                    let ident: String = chars[start..i].iter().collect();
                    let is_str_prefix = matches!(ident.as_str(), "r" | "b" | "br");
                    if is_str_prefix {
                        let raw = ident != "b";
                        // Count the `#` fence (raw strings only).
                        let mut j = i;
                        let mut fence = 0u32;
                        if raw {
                            while j < n && chars[j] == '#' {
                                fence += 1;
                                j += 1;
                            }
                        }
                        if j < n && chars[j] == '"' && (raw || j == i) {
                            cur.code.push_str(&ident);
                            for _ in 0..fence {
                                cur.code.push('#');
                            }
                            cur.code.push('"');
                            state = State::Str { raw_fence: raw.then_some(fence) };
                            i = j + 1;
                            continue;
                        }
                        // `b'x'` byte char literal.
                        if ident == "b" && i < n && chars[i] == '\'' {
                            cur.code.push_str("b'");
                            state = State::CharLit;
                            i += 1;
                            continue;
                        }
                    }
                    cur.code.push_str(&ident);
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && i + 1 < n && chars[i + 1] == '/' {
                    cur.comment.push_str("*/");
                    i += 2;
                    state = if depth == 1 { State::Code } else { State::BlockComment(depth - 1) };
                } else if c == '/' && i + 1 < n && chars[i + 1] == '*' {
                    cur.comment.push_str("/*");
                    i += 2;
                    state = State::BlockComment(depth + 1);
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str { raw_fence } => match raw_fence {
                None => {
                    if c == '\\' {
                        // Escape: blank both characters.
                        cur.code.push(' ');
                        i += 1;
                        if i < n && chars[i] != '\n' {
                            cur.code.push(' ');
                            i += 1;
                        }
                    } else if c == '"' {
                        cur.code.push('"');
                        state = State::Code;
                        i += 1;
                    } else {
                        cur.code.push(' ');
                        i += 1;
                    }
                }
                Some(fence) => {
                    if c == '"' {
                        // Terminates only with `fence` following `#`s.
                        let mut j = i + 1;
                        let mut have = 0u32;
                        while j < n && have < fence && chars[j] == '#' {
                            have += 1;
                            j += 1;
                        }
                        if have == fence {
                            cur.code.push('"');
                            for _ in 0..fence {
                                cur.code.push('#');
                            }
                            state = State::Code;
                            i = j;
                        } else {
                            cur.code.push(' ');
                            i += 1;
                        }
                    } else {
                        cur.code.push(' ');
                        i += 1;
                    }
                }
            },
            State::CharLit => {
                if c == '\\' {
                    cur.code.push(' ');
                    i += 1;
                    if i < n && chars[i] != '\n' {
                        cur.code.push(' ');
                        i += 1;
                    }
                } else if c == '\'' {
                    cur.code.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
        }
    }
    newline!();
    lines
}

pub(crate) fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

pub(crate) fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// True when `code` contains `word` as a whole token (not as a slice of
/// a longer identifier).
pub fn has_token(code: &str, word: &str) -> bool {
    find_token(code, word).is_some()
}

/// Byte offset of the first whole-token occurrence of `word` in `code`.
pub fn find_token(code: &str, word: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = code[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0 || {
            let prev = bytes[at - 1] as char;
            !is_ident_continue(prev)
        };
        let end = at + word.len();
        let after_ok = end >= bytes.len() || {
            let next = bytes[end] as char;
            !is_ident_continue(next)
        };
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        mask_source(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_go_to_the_comment_channel() {
        let l = mask_source("let x = 1; // SAFETY: not really\n");
        assert_eq!(l[0].code, "let x = 1; ");
        assert!(l[0].comment.contains("SAFETY: not really"));
    }

    #[test]
    fn string_contents_are_blanked_but_delimiters_kept() {
        let c = codes("let s = \"unsafe unwrap() // nope\";");
        assert!(!c[0].contains("unsafe"));
        assert!(!c[0].contains("unwrap"));
        assert!(!c[0].contains("//"));
        assert!(c[0].starts_with("let s = \""));
        assert!(c[0].ends_with("\";"));
    }

    #[test]
    fn escaped_quote_does_not_terminate() {
        let c = codes(r#"let s = "a\"unsafe"; let t = 2;"#);
        assert!(!c[0].contains("unsafe"));
        assert!(c[0].contains("let t = 2;"));
    }

    #[test]
    fn raw_strings_with_fences_hide_quotes_and_comments() {
        let src = "let s = r#\"has \" quote and // comment and unsafe\"#; foo();";
        let c = codes(src);
        assert!(!c[0].contains("unsafe"));
        assert!(c[0].contains("foo();"));
        let l = mask_source(src);
        assert!(l[0].comment.is_empty());
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let c = codes("let a = b\"unsafe\"; let b2 = br#\"unwrap()\"#; bar();");
        assert!(!c[0].contains("unsafe"));
        assert!(!c[0].contains("unwrap"));
        assert!(c[0].contains("bar();"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        // `'a'` is a char (contents masked); `'a` in `&'a` is a
        // lifetime that must stay in the code channel.
        let c = codes("fn f<'a>(x: &'a str) { let q = 'q'; let nl = '\\n'; }");
        assert!(c[0].contains("<'a>"));
        assert!(c[0].contains("&'a str"));
        assert!(!c[0].contains("'q'"), "char contents must be blanked: {}", c[0]);
    }

    #[test]
    fn quote_char_literal() {
        let c = codes(r"let q = '\''; let x = 1;");
        assert!(c[0].contains("let x = 1;"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a(); /* outer /* inner */ still comment */ b();";
        let l = mask_source(src);
        assert!(l[0].code.contains("a();"));
        assert!(l[0].code.contains("b();"));
        assert!(!l[0].code.contains("still"));
        assert!(l[0].comment.contains("inner"));
    }

    #[test]
    fn multiline_block_comment_spans_lines() {
        let l = mask_source("a();\n/* one\ntwo unsafe\n*/\nb();\n");
        assert!(l[1].is_code_blank());
        assert!(l[2].is_code_blank());
        assert!(l[2].comment.contains("unsafe"));
        assert_eq!(l[4].code, "b();");
    }

    #[test]
    fn multiline_string_spans_lines() {
        let l = mask_source("let s = \"first\nsecond unsafe\nthird\"; done();");
        assert!(!l[1].code.contains("unsafe"));
        assert!(l[2].code.contains("done();"));
    }

    #[test]
    fn token_boundaries() {
        assert!(has_token("unsafe { }", "unsafe"));
        assert!(!has_token("unsafe_code", "unsafe"));
        assert!(!has_token("not_unsafe", "unsafe"));
        assert!(has_token("x.unwrap()", "unwrap"));
        assert!(!has_token("x.unwrap_or(3)", "unwrap"));
        assert!(has_token("run_tester(", "run_tester"));
        assert!(!has_token("run_tester_batch(", "run_tester"));
    }

    #[test]
    fn lexer_is_total_on_unterminated_input() {
        // Unterminated constructs must not panic or loop.
        for src in ["\"abc", "r#\"abc", "/* abc", "'", "b'", "let x = '\\"] {
            let _ = mask_source(src);
        }
    }
}
