//! `ck_lint` — the workspace's self-hosted correctness tooling.
//!
//! Two halves:
//!
//! * **Static analysis** ([`rules`], [`walk`], [`lexer`]): a
//!   dependency-free lint pass over every workspace `.rs` file,
//!   enforcing the repo-specific invariants the compiler cannot —
//!   `// SAFETY:` coverage of `unsafe`, a panic-free library surface,
//!   determinism hygiene in the bit-identity-critical modules, and
//!   containment of deprecated entry points. Run it as
//!   `cargo run -p ck-lint` (nonzero exit on findings; CI's `lint`
//!   job does exactly this).
//! * **Dynamic analysis** (`alloc_gate`, behind the `alloc-gate`
//!   feature): a counting global allocator so regression tests can
//!   assert the warm engine paths really are zero-allocation.
//!
//! The lint is *self-hosted*: this crate is classified as library
//! surface and must itself pass every rule it enforces.

pub mod lexer;
pub mod rules;
pub mod walk;

#[cfg(feature = "alloc-gate")]
pub mod alloc_gate;

pub use rules::{lint_source, FileContext, Finding, Rule};
pub use walk::{classify, lint_workspace};
