//! The rule engine: repo-specific invariants checked on the lexed
//! token surface of every workspace source file.
//!
//! Each rule exists because one of the repository's *load-bearing
//! correctness properties* depends on the hygiene it enforces:
//!
//! | rule id | protects |
//! |---|---|
//! | `safety-comment` | auditability of the arena engine's `unsafe` aliasing contracts |
//! | `no-panic` | the panic-free library surface (`ckserve` north star) |
//! | `index-literal` | same — a literal index is a latent panic site |
//! | `determinism` | the sequential ≡ parallel ≡ distributed bit-identity oracle |
//! | `legacy-entry` | containment of deprecated pre-`Session` entry points |
//! | `bad-allow` | integrity of the suppression mechanism itself |
//!
//! Findings are suppressed **only** by an inline
//! `// ck-lint: allow(<rule>, reason = "...")` comment with a
//! non-empty reason (same line, the line directly above, or
//! `allow-file(...)` for a whole file). Directives are recognized only
//! in plain `//` comments whose text starts with `ck-lint:` — never in
//! doc comments, so documentation *about* the syntax stays inert. A suppression without a
//! reason is itself a finding — the point of the mechanism is that
//! every exception is *argued*, in place, in the diff.

use crate::lexer::{find_token, has_token, is_ident_continue, mask_source, MaskedLine};

/// A lint rule. See the module table for what each protects; the
/// variant docs state the precise check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// **R1 — `safety-comment`.** Every `unsafe` occurrence (block,
    /// fn, `unsafe impl`) must be immediately preceded by a
    /// `// SAFETY:` comment (or carry a `/// # Safety` doc section),
    /// with only comment/attribute lines between. The arena engine's
    /// correctness rests on ~70 manually argued aliasing contracts —
    /// an unargued `unsafe` is an unreviewable one.
    SafetyComment,
    /// **R2 — `no-panic`.** No `unwrap` / `expect` / `panic!` /
    /// `todo!` / `unimplemented!` in library-crate code outside
    /// `#[cfg(test)]`. The service surface must degrade through typed
    /// errors (`ck_congest::engine::EngineError`-style), never
    /// abort: a panic inside a batch shard or a net worker kills the
    /// whole process, not one job.
    NoPanic,
    /// **R2b — `index-literal`.** No `expr[<integer literal>]`
    /// indexing in library-crate code outside `#[cfg(test)]`: a
    /// literal index is a bounds-check panic waiting for the one input
    /// shape nobody tested. Use pattern matching, `first`/`get`, or
    /// carry a reasoned allow arguing why the bound holds.
    IndexLiteral,
    /// **R3 — `determinism`.** The bit-identity-critical modules
    /// (`engine`, `fault`, `net/*`, `dist`, `msg`, `scan`, `soa`,
    /// `serve`, `rpc`) must not
    /// use wall clocks (`Instant`, `SystemTime`), hash-randomized
    /// collections (`HashMap`, `HashSet`, `RandomState`), or process
    /// environment reads — any of these can silently break the
    /// sequential ≡ parallel ≡ distributed oracle that every
    /// equivalence proptest and the whole bench gate rests on.
    Determinism,
    /// **R4 — `legacy-entry`.** The deprecated pre-`Session` entry
    /// points (`run_with_params`, `run_with_workspace`, `run_tester`,
    /// `run_tester_reusing`, `run_tester_batch`) may be named only in
    /// their defining module and the `session_parity` legacy-vs-session
    /// equivalence tests, so the deprecated surface can only shrink.
    LegacyEntry,
    /// **Meta — `bad-allow`.** A malformed `ck-lint:` suppression
    /// comment: unknown rule name, missing or empty `reason`. Never
    /// itself suppressible.
    BadAllow,
}

impl Rule {
    /// The stable kebab-case id used in diagnostics and `allow(...)`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::SafetyComment => "safety-comment",
            Rule::NoPanic => "no-panic",
            Rule::IndexLiteral => "index-literal",
            Rule::Determinism => "determinism",
            Rule::LegacyEntry => "legacy-entry",
            Rule::BadAllow => "bad-allow",
        }
    }

    /// Parses a rule id as written inside `allow(...)`.
    pub fn from_id(id: &str) -> Option<Rule> {
        Some(match id {
            "safety-comment" => Rule::SafetyComment,
            "no-panic" => Rule::NoPanic,
            "index-literal" => Rule::IndexLiteral,
            "determinism" => Rule::Determinism,
            "legacy-entry" => Rule::LegacyEntry,
            _ => return None,
        })
    }
}

/// One diagnostic: `file:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (as given in [`FileContext::rel_path`]).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub rule: Rule,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule.id(), self.message)
    }
}

/// Where a file sits in the workspace — decides which rules apply.
/// Derived from the path by [`crate::walk`]; built by hand in rule
/// unit tests.
#[derive(Debug, Clone, Default)]
pub struct FileContext {
    /// Workspace-relative path with `/` separators (diagnostics + the
    /// `legacy-entry` location check).
    pub rel_path: String,
    /// True for library-crate source (`no-panic` / `index-literal`
    /// apply): `crates/{congest,core,graphgen,lint,serve}/src/**`
    /// (minus `src/bin/**`) and `crates/cli/src/lib.rs`.
    pub library: bool,
    /// True for the bit-identity-critical modules (`determinism`
    /// applies): `engine.rs`, `fault.rs`, `net/**`, `dist.rs`,
    /// `msg.rs`, `scan.rs`, `soa.rs`, `serve.rs`, `rpc.rs` under a
    /// `src/` tree.
    pub determinism_critical: bool,
}

/// The deprecated pre-`Session` entry points and the single module
/// allowed to define (and therefore name) each.
const LEGACY_ENTRY_POINTS: &[(&str, &str)] = &[
    ("run_with_params", "crates/congest/src/engine.rs"),
    ("run_with_workspace", "crates/congest/src/engine.rs"),
    ("run_tester", "crates/core/src/tester.rs"),
    ("run_tester_reusing", "crates/core/src/tester.rs"),
    ("run_tester_batch", "crates/core/src/batch.rs"),
];

/// Test files additionally allowed to name legacy entry points: the
/// legacy-vs-session bit-identity parity suite is *about* them.
const LEGACY_OK_SUFFIX: &str = "tests/session_parity.rs";

/// Identifiers banned in determinism-critical modules, with the reason
/// given in the diagnostic.
const DETERMINISM_BANNED: &[(&str, &str)] = &[
    ("Instant", "wall-clock reads vary across runs and executors"),
    ("SystemTime", "wall-clock reads vary across runs and executors"),
    ("RandomState", "per-process hash seeds randomize iteration order"),
    ("HashMap", "default hasher randomizes iteration order; use BTreeMap or a seeded hasher"),
    ("HashSet", "default hasher randomizes iteration order; use BTreeSet or a seeded hasher"),
];

/// Panic-site tokens banned on library paths. `expect`/`unwrap` are
/// method calls (require a preceding `.`), the rest are macros.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

#[derive(Debug, Clone, PartialEq, Eq)]
enum AllowScope {
    /// Covers `line` itself and the next line carrying code.
    Local { line: usize },
    /// Covers the whole file.
    File,
}

#[derive(Debug, Clone)]
struct Allow {
    rule: Rule,
    scope: AllowScope,
}

/// Parsed result of scanning one comment for `ck-lint:` directives.
#[derive(Debug, Default)]
struct DirectiveScan {
    allows: Vec<Allow>,
    errors: Vec<String>,
}

/// Parses every `ck-lint:` directive inside `comment`. Grammar:
///
/// ```text
/// ck-lint: allow(<rule>, reason = "<non-empty>")
/// ck-lint: allow-file(<rule>, reason = "<non-empty>")
/// ```
fn scan_directives(comment: &str, line: usize) -> DirectiveScan {
    let mut out = DirectiveScan::default();
    let mut rest = comment;
    while let Some(pos) = rest.find("ck-lint:") {
        rest = &rest[pos + "ck-lint:".len()..];
        let body = rest.trim_start();
        let (file_scope, after_kw) = if let Some(a) = body.strip_prefix("allow-file") {
            (true, a)
        } else if let Some(a) = body.strip_prefix("allow") {
            (false, a)
        } else {
            out.errors.push("expected `allow(...)` or `allow-file(...)` after `ck-lint:`".into());
            continue;
        };
        let Some(args) = after_kw.trim_start().strip_prefix('(') else {
            out.errors.push("expected `(` after `allow`".into());
            continue;
        };
        let Some(close) = args.find(')') else {
            out.errors.push("unclosed `allow(...)` directive".into());
            continue;
        };
        let inner = &args[..close];
        let Some((rule_part, reason_part)) = inner.split_once(',') else {
            out.errors.push(format!("`allow({inner})` is missing its `reason = \"...\"` argument"));
            continue;
        };
        let rule_id = rule_part.trim();
        let Some(rule) = Rule::from_id(rule_id) else {
            out.errors.push(format!("unknown rule `{rule_id}` in allow directive"));
            continue;
        };
        let reason = reason_part.trim();
        let Some(quoted) = reason
            .strip_prefix("reason")
            .map(str::trim_start)
            .and_then(|r| r.strip_prefix('='))
            .map(str::trim_start)
        else {
            out.errors.push(format!("`allow({rule_id}, ...)` needs `reason = \"...\"`"));
            continue;
        };
        let text = quoted.trim().trim_matches('"').trim();
        if text.is_empty() {
            out.errors.push(format!("`allow({rule_id})` has an empty reason"));
            continue;
        }
        let scope = if file_scope { AllowScope::File } else { AllowScope::Local { line } };
        out.allows.push(Allow { rule, scope });
    }
    out
}

/// Per-line facts the rules consume, precomputed in one pass.
struct LineFacts {
    /// Lexed code/comment channels.
    lines: Vec<MaskedLine>,
    /// Line is inside a `#[cfg(test)]` item (the attribute's own line
    /// included).
    in_test: Vec<bool>,
    /// Line is (part of) an outer/inner attribute.
    is_attr: Vec<bool>,
}

fn compute_facts(lines: Vec<MaskedLine>) -> LineFacts {
    let n = lines.len();
    let mut in_test = vec![false; n];
    let mut is_attr = vec![false; n];

    // Attribute spans: `#[...]` / `#![...]` may run over several lines;
    // `#` appears in code only as an attribute sigil (raw-string
    // fences were masked by the lexer).
    let mut attr_depth = 0u32;
    for (idx, l) in lines.iter().enumerate() {
        let code = l.code.as_bytes();
        let mut i = 0usize;
        if attr_depth > 0 {
            is_attr[idx] = true;
        }
        while i < code.len() {
            match code[i] {
                b'#' if attr_depth == 0 => {
                    let mut j = i + 1;
                    if j < code.len() && code[j] == b'!' {
                        j += 1;
                    }
                    if j < code.len() && code[j] == b'[' {
                        attr_depth = 1;
                        is_attr[idx] = true;
                        i = j + 1;
                        continue;
                    }
                }
                b'[' if attr_depth > 0 => attr_depth += 1,
                b']' if attr_depth > 0 => attr_depth -= 1,
                _ => {}
            }
            i += 1;
        }
        if attr_depth > 0 {
            is_attr[idx] = true;
        }
    }

    // `#[cfg(test)]` regions: after the attribute, the next braced
    // item (or the item ending at `;` first) is test-only code.
    // Tracked with a brace stack so nested modules close correctly.
    let mut pending_test = false;
    let mut brace_stack: Vec<bool> = Vec::new(); // true = opened a test region
    let mut test_depth = 0u32;
    for (idx, l) in lines.iter().enumerate() {
        if l.code.contains("cfg(test)") {
            pending_test = true;
        }
        if pending_test || test_depth > 0 {
            in_test[idx] = true;
        }
        for b in l.code.bytes() {
            match b {
                b'{' => {
                    let opens_test = pending_test;
                    pending_test = false;
                    brace_stack.push(opens_test);
                    if opens_test {
                        test_depth += 1;
                    }
                }
                b'}' => {
                    if let Some(was_test) = brace_stack.pop() {
                        if was_test {
                            test_depth = test_depth.saturating_sub(1);
                        }
                    }
                }
                b';' if pending_test => {
                    // `#[cfg(test)] use …;` — the item ends without a
                    // body; the region was just that item.
                    pending_test = false;
                }
                _ => {}
            }
        }
        if test_depth > 0 {
            in_test[idx] = true;
        }
    }

    LineFacts { lines, in_test, is_attr }
}

/// Lints one file's source text under `ctx`. Pure function of its
/// inputs — the unit-testable core the binary and the workspace walker
/// both call.
pub fn lint_source(src: &str, ctx: &FileContext) -> Vec<Finding> {
    let facts = compute_facts(mask_source(src));
    let n = facts.lines.len();

    // Pass 1: suppression directives (and their own malformations).
    let mut allows: Vec<Allow> = Vec::new();
    let mut findings: Vec<Finding> = Vec::new();
    for (idx, l) in facts.lines.iter().enumerate() {
        // A directive must be a plain `//` comment whose text starts
        // with `ck-lint:` (`foo(); // ck-lint: allow(...)` counts).
        // Doc comments (`///`, `//!`) are documentation — prose there
        // describing the syntax must stay inert — and block comments
        // are not supported as directive carriers.
        let Some(body) = l.comment.trim_start().strip_prefix("//") else { continue };
        if body.starts_with('/') || body.starts_with('!') {
            continue;
        }
        if !body.trim_start().starts_with("ck-lint:") {
            continue;
        }
        let scan = scan_directives(body, idx);
        for msg in scan.errors {
            findings.push(Finding {
                file: ctx.rel_path.clone(),
                line: idx + 1,
                rule: Rule::BadAllow,
                message: msg,
            });
        }
        allows.extend(scan.allows);
    }

    // Resolve local allow scopes to the concrete set of covered lines:
    // the directive's own line plus the next line carrying code.
    let mut suppressed: Vec<(usize, Rule)> = Vec::new();
    let mut file_allows: Vec<Rule> = Vec::new();
    for a in &allows {
        match a.scope {
            AllowScope::File => file_allows.push(a.rule),
            AllowScope::Local { line } => {
                suppressed.push((line, a.rule));
                let mut j = line + 1;
                while j < n && facts.lines[j].is_code_blank() {
                    j += 1;
                }
                if j < n {
                    suppressed.push((j, a.rule));
                }
            }
        }
    }
    let is_allowed = |line_idx: usize, rule: Rule| -> bool {
        file_allows.contains(&rule) || suppressed.iter().any(|&(l, r)| l == line_idx && r == rule)
    };

    // Pass 2: the rules.
    let mut emit = |line_idx: usize, rule: Rule, message: String| {
        if !is_allowed(line_idx, rule) {
            findings.push(Finding {
                file: ctx.rel_path.clone(),
                line: line_idx + 1,
                rule,
                message,
            });
        }
    };

    for idx in 0..n {
        let line = &facts.lines[idx];
        let code = line.code.as_str();
        if line.is_code_blank() {
            continue;
        }

        // R1: every `unsafe` needs an adjacent safety argument. Applies
        // everywhere, test code included — a test's aliasing contract
        // is as breakable as production's.
        if has_token(code, "unsafe") && !safety_covered(&facts, idx) {
            emit(
                idx,
                Rule::SafetyComment,
                "`unsafe` without an immediately preceding `// SAFETY:` comment \
                 (or `/// # Safety` doc section)"
                    .into(),
            );
        }

        let lib_code = ctx.library && !facts.in_test[idx];

        // R2: panic-free library surface.
        if lib_code {
            for &m in PANIC_METHODS {
                if let Some(pos) = find_token(code, m) {
                    let dotted = code[..pos].trim_end().ends_with('.');
                    let called = code[pos + m.len()..].trim_start().starts_with('(');
                    if dotted && called {
                        emit(
                            idx,
                            Rule::NoPanic,
                            format!(
                                "`.{m}()` on a library path — return a typed error instead \
                                 (or argue unreachability in an allow)"
                            ),
                        );
                    }
                }
            }
            for &m in PANIC_MACROS {
                if let Some(pos) = find_token(code, m) {
                    if code[pos + m.len()..].starts_with('!') {
                        emit(
                            idx,
                            Rule::NoPanic,
                            format!("`{m}!` on a library path — return a typed error instead"),
                        );
                    }
                }
            }
            if let Some(col) = literal_index(code) {
                emit(
                    idx,
                    Rule::IndexLiteral,
                    format!(
                        "literal index `{}` on a library path — a latent bounds panic; \
                         destructure or `get`, or argue the bound in an allow",
                        col
                    ),
                );
            }
        }

        // R3: determinism hygiene in the bit-identity-critical modules.
        if ctx.determinism_critical && !facts.in_test[idx] {
            for &(ident, why) in DETERMINISM_BANNED {
                if has_token(code, ident) {
                    emit(
                        idx,
                        Rule::Determinism,
                        format!("`{ident}` in a bit-identity-critical module: {why}"),
                    );
                }
            }
            if code.contains("env::var") || code.contains("env::vars_os") {
                emit(
                    idx,
                    Rule::Determinism,
                    "process-environment read in a bit-identity-critical module".into(),
                );
            }
        }

        // R4: deprecated entry points stay in their defining module.
        if !facts.in_test[idx] && !ctx.rel_path.ends_with(LEGACY_OK_SUFFIX) {
            for &(name, home) in LEGACY_ENTRY_POINTS {
                if ctx.rel_path != home && has_token(code, name) {
                    emit(
                        idx,
                        Rule::LegacyEntry,
                        format!(
                            "deprecated entry point `{name}` outside its defining module \
                             ({home}) — migrate to the Session API"
                        ),
                    );
                }
            }
        }
    }

    findings
}

/// True when the `unsafe` on `lines[idx]` carries a safety argument:
/// a `SAFETY:` marker in a same-line comment, or in the contiguous
/// comment/attribute block directly above (doc `# Safety` sections
/// count — that is the public-`unsafe fn` convention).
fn safety_covered(facts: &LineFacts, idx: usize) -> bool {
    let mentions_safety =
        |c: &str| c.contains("SAFETY:") || c.contains("Safety:") || c.contains("# Safety");
    if mentions_safety(&facts.lines[idx].comment) {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let l = &facts.lines[j];
        let comment_only = l.is_code_blank() && !l.comment.is_empty();
        if comment_only || facts.is_attr[j] {
            if mentions_safety(&l.comment) {
                return true;
            }
            continue;
        }
        break;
    }
    false
}

/// Detects `expr[<integer literal>]` indexing: an identifier, `)`, or
/// `]` immediately followed by `[`, an integer literal, `]`. Returns
/// the matched index text. Array *types* (`[u64; 4]`), repeat
/// expressions (`[0u8; 5]`), and range indexing (`buf[1..5]`) do not
/// match.
fn literal_index(code: &str) -> Option<String> {
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1] as char;
        if !(is_ident_continue(prev) || prev == ')' || prev == ']') {
            continue;
        }
        let inner = &code[i + 1..];
        let digits: usize = inner.bytes().take_while(|b| b.is_ascii_digit()).count();
        if digits == 0 {
            continue;
        }
        let after = &inner[digits..];
        if after.starts_with(']') {
            return Some(inner[..digits].to_string());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_ctx() -> FileContext {
        FileContext {
            rel_path: "crates/congest/src/example.rs".into(),
            library: true,
            determinism_critical: false,
        }
    }

    fn det_ctx() -> FileContext {
        FileContext {
            rel_path: "crates/congest/src/engine.rs".into(),
            library: true,
            determinism_critical: true,
        }
    }

    fn rules_of(findings: &[Finding]) -> Vec<Rule> {
        findings.iter().map(|f| f.rule).collect()
    }

    // ---- R1: safety-comment ----

    #[test]
    fn unsafe_without_safety_comment_is_flagged() {
        let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let f = lint_source(src, &lib_ctx());
        assert_eq!(rules_of(&f), vec![Rule::SafetyComment]);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn safety_comment_directly_above_covers() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
        assert!(lint_source(src, &lib_ctx()).is_empty());
    }

    #[test]
    fn safety_comment_same_line_covers() {
        let src =
            "fn f(p: *const u8) -> u8 {\n    unsafe { *p } // SAFETY: p valid by contract.\n}\n";
        assert!(lint_source(src, &lib_ctx()).is_empty());
    }

    #[test]
    fn multi_line_safety_block_covers() {
        let src = "// SAFETY: long argument\n// continuing on a second line.\nunsafe impl Send for X {}\n";
        assert!(lint_source(src, &lib_ctx()).is_empty());
    }

    #[test]
    fn doc_safety_section_covers_unsafe_fn() {
        let src = "/// Does things.\n///\n/// # Safety\n/// `p` must be valid.\n#[inline]\npub unsafe fn f(p: *const u8) -> u8 {\n    *p\n}\n";
        assert!(lint_source(src, &lib_ctx()).is_empty());
    }

    #[test]
    fn attribute_between_comment_and_unsafe_is_skipped() {
        let src = "// SAFETY: argued here.\n#[allow(clippy::something)]\nunsafe { work() }\n";
        assert!(lint_source(src, &lib_ctx()).is_empty());
    }

    #[test]
    fn multiline_attribute_is_skipped_upward() {
        let src = "// SAFETY: argued above the attribute.\n#[deprecated(\n    note = \"x\"\n)]\npub unsafe fn g() {}\n";
        assert!(lint_source(src, &lib_ctx()).is_empty());
    }

    #[test]
    fn code_line_between_comment_and_unsafe_breaks_coverage() {
        let src = "// SAFETY: stale, belongs to nothing.\nlet x = 1;\nunsafe { work() }\n";
        let f = lint_source(src, &lib_ctx());
        assert_eq!(rules_of(&f), vec![Rule::SafetyComment]);
    }

    #[test]
    fn unsafe_in_string_or_comment_is_not_flagged() {
        let src = "let s = \"unsafe\"; // unsafe in prose\n/* unsafe */ let t = 1;\n";
        assert!(lint_source(src, &lib_ctx()).is_empty());
    }

    #[test]
    fn unsafe_in_test_code_still_needs_safety() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        unsafe { poke() }\n    }\n}\n";
        let f = lint_source(src, &lib_ctx());
        assert_eq!(rules_of(&f), vec![Rule::SafetyComment]);
    }

    // ---- R2: no-panic / index-literal ----

    #[test]
    fn unwrap_on_library_path_is_flagged() {
        let f = lint_source("pub fn f() { x().unwrap(); }\n", &lib_ctx());
        assert_eq!(rules_of(&f), vec![Rule::NoPanic]);
    }

    #[test]
    fn expect_and_macros_are_flagged() {
        let src = "pub fn f() {\n    y().expect(\"nope\");\n    panic!(\"boom\");\n    todo!();\n    unimplemented!();\n}\n";
        let f = lint_source(src, &lib_ctx());
        assert_eq!(f.len(), 4);
        assert!(f.iter().all(|x| x.rule == Rule::NoPanic));
    }

    #[test]
    fn unwrap_lookalikes_are_not_flagged() {
        let src = "pub fn f() {\n    x().unwrap_or(0);\n    x().unwrap_or_else(|| 1);\n    x().unwrap_or_default();\n    let expect = 3; let _ = expect;\n}\n";
        assert!(lint_source(src, &lib_ctx()).is_empty());
    }

    #[test]
    fn unwrap_in_cfg_test_is_exempt() {
        let src =
            "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x().unwrap(); panic!(); }\n}\n";
        assert!(lint_source(src, &lib_ctx()).is_empty());
    }

    #[test]
    fn unwrap_outside_library_context_is_exempt() {
        let ctx = FileContext { rel_path: "crates/bench/src/lib.rs".into(), ..Default::default() };
        assert!(lint_source("pub fn f() { x().unwrap(); }\n", &ctx).is_empty());
    }

    #[test]
    fn doc_example_unwrap_is_exempt() {
        let src = "/// ```\n/// session.run(f).unwrap();\n/// ```\npub fn f() {}\n";
        assert!(lint_source(src, &lib_ctx()).is_empty());
    }

    #[test]
    fn literal_index_is_flagged_but_ranges_and_types_are_not() {
        let flagged = lint_source("pub fn f(b: &[u8]) -> u8 { b[0] }\n", &lib_ctx());
        assert_eq!(rules_of(&flagged), vec![Rule::IndexLiteral]);
        let ok = "pub fn f(b: &[u8]) -> (&[u8], [u8; 4], Vec<u8>, u8, u8) {\n    let arr: [u8; 4] = [0u8; 4];\n    let i = 1;\n    (&b[1..3], arr, vec![0u8; 9], b[i], *b.first().unwrap_or(&0))\n}\n";
        assert!(lint_source(ok, &lib_ctx()).is_empty());
    }

    // ---- R3: determinism ----

    #[test]
    fn wall_clock_and_hash_collections_flagged_in_critical_modules() {
        let src = "use std::time::Instant;\npub fn f() {\n    let m: HashMap<u32, u32> = HashMap::new();\n    let _ = m;\n}\n";
        let f = lint_source(src, &det_ctx());
        // Instant (use), HashMap twice (type + ctor line counts once per line).
        assert!(f.iter().all(|x| x.rule == Rule::Determinism));
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn determinism_rule_ignores_noncritical_files_and_tests() {
        let src = "pub fn f() { let _ = std::time::Instant::now(); }\n";
        assert!(lint_source(src, &lib_ctx()).is_empty());
        let test_src = "#[cfg(test)]\nmod tests {\n    fn t() { let _ = Instant::now(); }\n}\n";
        assert!(lint_source(test_src, &det_ctx()).is_empty());
    }

    #[test]
    fn btree_collections_pass_the_determinism_rule() {
        let src = "use std::collections::{BTreeMap, BTreeSet};\npub fn f(m: &BTreeMap<u32, u32>, s: &BTreeSet<u32>) -> usize { m.len() + s.len() }\n";
        assert!(lint_source(src, &det_ctx()).is_empty());
    }

    // ---- R4: legacy-entry ----

    #[test]
    fn legacy_entry_point_flagged_outside_home() {
        let ctx = FileContext {
            rel_path: "crates/bench/src/experiments.rs".into(),
            ..Default::default()
        };
        let f = lint_source("let r = run_tester_batch(&jobs, &opts);\n", &ctx);
        assert_eq!(rules_of(&f), vec![Rule::LegacyEntry]);
    }

    #[test]
    fn legacy_entry_point_ok_in_home_and_parity_tests() {
        let home = FileContext {
            rel_path: "crates/core/src/batch.rs".into(),
            library: false,
            determinism_critical: false,
        };
        assert!(lint_source("pub fn run_tester_batch() {}\n", &home).is_empty());
        let parity =
            FileContext { rel_path: "tests/session_parity.rs".into(), ..Default::default() };
        assert!(lint_source("let l = run_tester_batch(&jobs, &opts);\n", &parity).is_empty());
    }

    #[test]
    fn legacy_name_in_comment_is_not_flagged() {
        let ctx = FileContext {
            rel_path: "crates/congest/src/session.rs".into(),
            library: true,
            determinism_critical: false,
        };
        let src = "//! Folds `run_with_params` into the builder.\npub fn f() {}\n";
        assert!(lint_source(src, &ctx).is_empty());
    }

    // ---- suppression ----

    #[test]
    fn same_line_allow_suppresses() {
        let src = "pub fn f() { x().unwrap() } // ck-lint: allow(no-panic, reason = \"poisoning is unrecoverable here\")\n";
        assert!(lint_source(src, &lib_ctx()).is_empty());
    }

    #[test]
    fn preceding_line_allow_suppresses() {
        let src = "// ck-lint: allow(no-panic, reason = \"len checked two lines up\")\npub fn f() { x().unwrap() }\n";
        assert!(lint_source(src, &lib_ctx()).is_empty());
    }

    #[test]
    fn allow_reaches_over_blank_and_comment_lines() {
        let src = "// ck-lint: allow(no-panic, reason = \"argued\")\n\n// interleaved prose\npub fn f() { x().unwrap() }\n";
        assert!(lint_source(src, &lib_ctx()).is_empty());
    }

    #[test]
    fn allow_covers_only_its_rule_and_line() {
        let src = "// ck-lint: allow(no-panic, reason = \"argued\")\npub fn f() { x().unwrap() }\npub fn g() { y().unwrap() }\n";
        let f = lint_source(src, &lib_ctx());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn allow_of_wrong_rule_does_not_suppress() {
        let src = "// ck-lint: allow(determinism, reason = \"misdirected\")\npub fn f() { x().unwrap() }\n";
        let f = lint_source(src, &lib_ctx());
        assert_eq!(rules_of(&f), vec![Rule::NoPanic]);
    }

    #[test]
    fn allow_file_suppresses_everywhere() {
        let src = "// ck-lint: allow-file(no-panic, reason = \"generated table, bounds static\")\npub fn f() { x().unwrap() }\npub fn g() { y().unwrap() }\n";
        assert!(lint_source(src, &lib_ctx()).is_empty());
    }

    #[test]
    fn allow_without_reason_is_a_finding_and_does_not_suppress() {
        let src = "// ck-lint: allow(no-panic)\npub fn f() { x().unwrap() }\n";
        let f = lint_source(src, &lib_ctx());
        assert_eq!(rules_of(&f), vec![Rule::BadAllow, Rule::NoPanic]);
    }

    #[test]
    fn allow_with_empty_reason_is_a_finding() {
        let src = "// ck-lint: allow(no-panic, reason = \"\")\npub fn f() { x().unwrap() }\n";
        let f = lint_source(src, &lib_ctx());
        assert_eq!(rules_of(&f), vec![Rule::BadAllow, Rule::NoPanic]);
    }

    #[test]
    fn allow_with_unknown_rule_is_a_finding() {
        let src = "// ck-lint: allow(no-such-rule, reason = \"typo\")\npub fn f() {}\n";
        let f = lint_source(src, &lib_ctx());
        assert_eq!(rules_of(&f), vec![Rule::BadAllow]);
    }

    #[test]
    fn directive_text_in_a_string_is_inert() {
        // The fixture strings in ck-lint's own tests must not
        // self-trigger: directives only count inside comments.
        let src = "let s = \"// ck-lint: allow(no-panic)\";\n";
        assert!(lint_source(src, &lib_ctx()).is_empty());
    }

    #[test]
    fn findings_format_as_file_line_rule() {
        let f = lint_source("pub fn f() { x().unwrap(); }\n", &lib_ctx());
        let s = f[0].to_string();
        assert!(s.starts_with("crates/congest/src/example.rs:1: [no-panic]"), "{s}");
    }
}
