//! Workspace traversal: find every `.rs` file, classify it into a
//! [`FileContext`], and run the rule engine over it.
//!
//! The walker is deterministic (directory entries are sorted before
//! recursion) so diagnostics come out in a stable order regardless of
//! filesystem enumeration order — the lint's own output obeys the
//! repo's reproducibility bar.

use crate::rules::{lint_source, FileContext, Finding};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Library crates whose `src/` trees carry the panic-free-surface
/// rules (`no-panic`, `index-literal`). `cli` is listed separately:
/// only its `lib.rs` is library surface, the binary half may panic at
/// the top level.
const LIBRARY_CRATES: &[&str] = &["congest", "core", "graphgen", "lint", "serve"];

/// File stems that are bit-identity-critical when under `src/`
/// (see [`crate::rules::Rule::Determinism`]). `soa` is the SoA
/// node-state arena: its raw-pointer views back both executors, so any
/// nondeterminism there breaks the seq≡par bit-identity contract.
/// `serve` is the probe service's job loop (verdicts must be a pure
/// function of the submitted job — wall-clock reads there are confined
/// to reasoned allows for latency histograms and idle-reclaim timers)
/// and `rpc` its verdict-carrying wire grammar, whose encode/decode
/// must be a pure function of the message bytes.
const DETERMINISM_STEMS: &[&str] =
    &["engine", "fault", "dist", "msg", "scan", "soa", "serve", "rpc"];

/// Classifies a workspace-relative path (with `/` separators) into the
/// rule context the engine needs. Pure so the mapping itself is
/// unit-testable.
pub fn classify(rel_path: &str) -> FileContext {
    let in_src = |prefix: &str| {
        rel_path.starts_with(prefix) && !rel_path.starts_with(&format!("{prefix}bin/"))
    };
    let library = LIBRARY_CRATES.iter().any(|c| in_src(&format!("crates/{c}/src/")))
        || rel_path == "crates/cli/src/lib.rs";

    let stem = Path::new(rel_path).file_stem().and_then(|s| s.to_str()).unwrap_or("");
    let under_src = rel_path.contains("/src/");
    let in_net_dir = rel_path.contains("/src/net/");
    let determinism_critical = under_src
        && (in_net_dir || DETERMINISM_STEMS.contains(&stem))
        && !rel_path.contains("/bin/");

    FileContext { rel_path: rel_path.to_string(), library, determinism_critical }
}

/// Recursively collects every `.rs` file under `root`, skipping
/// `target/`, hidden directories, and the shims (external-crate
/// stand-ins are out of scope for repo invariants). Paths come back
/// sorted and workspace-relative.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> =
            fs::read_dir(&dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if name.starts_with('.') || name == "target" || name == "shims" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints the whole workspace rooted at `root`. Returns all findings,
/// sorted by (file, line). IO errors on individual files become
/// synthetic findings rather than aborting the run, so one unreadable
/// file cannot mask real diagnostics elsewhere.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let files = collect_rs_files(root)?;
    let mut findings = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        let ctx = classify(&rel);
        match fs::read_to_string(&path) {
            Ok(src) => findings.extend(lint_source(&src, &ctx)),
            Err(e) => findings.push(Finding {
                file: rel,
                line: 0,
                rule: crate::rules::Rule::BadAllow,
                message: format!("unreadable source file: {e}"),
            }),
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_classification() {
        assert!(classify("crates/congest/src/engine.rs").library);
        assert!(classify("crates/core/src/tester.rs").library);
        assert!(classify("crates/graphgen/src/lib.rs").library);
        assert!(classify("crates/lint/src/rules.rs").library);
        assert!(classify("crates/cli/src/lib.rs").library);
        assert!(classify("crates/serve/src/serve.rs").library);
        assert!(classify("crates/serve/src/rpc.rs").library);
        // Binaries, benches, tests, and non-library crates are not.
        assert!(!classify("crates/cli/src/bin/ckprobe.rs").library);
        assert!(!classify("crates/congest/src/bin/tool.rs").library);
        assert!(!classify("crates/bench/src/lib.rs").library);
        assert!(!classify("crates/congest/tests/faults.rs").library);
        assert!(!classify("tests/session_parity.rs").library);
        assert!(!classify("src/lib.rs").library);
    }

    #[test]
    fn determinism_classification() {
        assert!(classify("crates/congest/src/engine.rs").determinism_critical);
        assert!(classify("crates/congest/src/fault.rs").determinism_critical);
        assert!(classify("crates/congest/src/net/frame.rs").determinism_critical);
        assert!(classify("crates/congest/src/net/mod.rs").determinism_critical);
        assert!(classify("crates/core/src/dist.rs").determinism_critical);
        assert!(classify("crates/core/src/msg.rs").determinism_critical);
        assert!(classify("crates/core/src/scan.rs").determinism_critical);
        assert!(classify("crates/core/src/soa.rs").determinism_critical);
        assert!(classify("crates/serve/src/serve.rs").determinism_critical);
        assert!(classify("crates/serve/src/rpc.rs").determinism_critical);
        // The service's client helper and lib root are not verdict-
        // producing; only the job loop and the wire grammar are.
        assert!(!classify("crates/serve/src/client.rs").determinism_critical);
        assert!(!classify("crates/serve/src/lib.rs").determinism_critical);
        assert!(!classify("crates/congest/src/session.rs").determinism_critical);
        assert!(!classify("crates/core/src/tester.rs").determinism_critical);
        // Test files named like critical modules are out of scope: the
        // rule is about library behavior, not test harness clocks.
        assert!(!classify("crates/congest/tests/engine.rs").determinism_critical);
        assert!(!classify("tests/soa_parity.rs").determinism_critical);
    }
}
