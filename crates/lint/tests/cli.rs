//! End-to-end test of the `ck-lint` binary: a fixture workspace with
//! planted violations must fail with one diagnostic per violation, and
//! the real repository must lint clean.
//!
//! Fixtures are materialized in a temp directory at runtime — they must
//! not exist as `.rs` files inside the repo, or the workspace walk in
//! the clean-repo half (and in CI's lint job) would find them.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_ck-lint");

/// A unique-per-process fixture root under the system temp dir.
fn fixture_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ck-lint-cli-{}-{tag}", std::process::id()));
    if dir.exists() {
        fs::remove_dir_all(&dir).expect("stale fixture dir must be removable");
    }
    fs::create_dir_all(&dir).expect("fixture dir must be creatable");
    dir
}

fn write(root: &Path, rel: &str, src: &str) {
    let path = root.join(rel);
    fs::create_dir_all(path.parent().expect("fixture paths have parents"))
        .expect("fixture subdir must be creatable");
    fs::write(path, src).expect("fixture file must be writable");
}

#[test]
fn fixture_violations_fail_with_diagnostics() {
    let root = fixture_root("violations");
    // A library file in a determinism-critical stem, carrying one
    // violation of each rule family the path can trigger.
    write(
        &root,
        "crates/congest/src/engine.rs",
        r#"
pub fn f(v: &[u64]) -> u64 {
    let t = std::time::Instant::now();
    let first = v[0];
    let second = v.first().unwrap();
    unsafe { std::ptr::read(v.as_ptr()) };
    first + second + t.elapsed().as_secs()
}
"#,
    );
    // A malformed suppression: unknown rule name.
    write(
        &root,
        "crates/core/src/lib.rs",
        r#"
// ck-lint: allow(definitely-not-a-rule, reason = "nope")
pub fn g() {}
"#,
    );

    let out = Command::new(BIN).arg(&root).output().expect("ck-lint must spawn");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success(), "planted violations must fail the lint; stdout:\n{stdout}");
    for rule in
        ["[determinism]", "[index-literal]", "[no-panic]", "[safety-comment]", "[bad-allow]"]
    {
        assert!(stdout.contains(rule), "missing {rule} diagnostic in:\n{stdout}");
    }
    // Diagnostics carry file:line anchors in walk order.
    assert!(
        stdout.contains("crates/congest/src/engine.rs:"),
        "diagnostics must be file:line-anchored:\n{stdout}"
    );
    fs::remove_dir_all(&root).expect("fixture dir must be removable");
}

#[test]
fn suppressed_fixture_and_real_workspace_are_clean() {
    // The same constructs, each under a well-formed allow (or outside
    // library/determinism scope), must pass.
    let root = fixture_root("clean");
    write(
        &root,
        "crates/congest/src/engine.rs",
        r#"
pub fn f(v: &[u64]) -> u64 {
    // ck-lint: allow(index-literal, reason = "caller guarantees nonempty")
    let first = v[0];
    // ck-lint: allow(no-panic, reason = "checked by the line above")
    let second = v.first().unwrap();
    // SAFETY: v is nonempty, so reading the first element is in bounds.
    unsafe { std::ptr::read(v.as_ptr()) };
    first + second
}
"#,
    );
    // Bench code is outside the panic-free library surface entirely.
    write(&root, "crates/bench/src/lib.rs", "pub fn b(v: &[u64]) -> u64 { v[0] }\n");
    let out = Command::new(BIN).arg(&root).output().expect("ck-lint must spawn");
    assert!(
        out.status.success(),
        "suppressed fixture must be clean:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    fs::remove_dir_all(&root).expect("fixture dir must be removable");

    // And the repository itself holds its own bar: the workspace two
    // levels above this crate lints clean.
    let ws_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = Command::new(BIN).arg(&ws_root).output().expect("ck-lint must spawn");
    assert!(
        out.status.success(),
        "the repository must lint clean:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}
