//! A small blocking client for the probe service: `ckprobe submit`,
//! the soak tests, and the bench harness all talk through it.
//!
//! The client is deliberately thin — one connection, one frame
//! reader, one [`SharedWriter`] — and deliberately honest about
//! failure: every path out is a typed [`ClientError`], including the
//! service's own `Error` frames, which surface as
//! [`ClientError::Remote`] with the service's message intact.

use std::fmt;
use std::net::TcpStream;
use std::time::Duration;

use ck_congest::net::frame::{Deadline, FrameError, FrameKind, FrameReader};
use ck_congest::net::link::{connect_with_retry, SharedWriter};

use crate::rpc::{
    decode_serve_body, encode_serve_body, JobRequest, JobResult, ServeMsg, StatsSnapshot,
};

/// Typed failure of a client call.
#[derive(Clone, Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, send).
    Io(String),
    /// The reply stream was malformed or timed out.
    Frame(FrameError),
    /// The service answered with an `Error` frame; the payload is its
    /// message. The connection is still usable — the service keeps
    /// links whose frame boundary survived.
    Remote(String),
    /// A well-formed reply of the wrong RPC type for this call.
    Protocol(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Frame(e) => write!(f, "frame: {e}"),
            ClientError::Remote(msg) => write!(f, "service error: {msg}"),
            ClientError::Protocol(what) => write!(f, "protocol: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// A blocking connection to one probe service.
pub struct ServeClient {
    reader: TcpStream,
    /// Keeps partial-frame state across receive deadlines, so a
    /// `TimedOut` recv leaves the stream in sync and a retry resumes
    /// the half-arrived reply instead of misparsing its tail.
    frames: FrameReader,
    writer: SharedWriter<TcpStream>,
    /// Per-receive budget in milliseconds.
    timeout_ms: u64,
}

impl ServeClient {
    /// Connects with bounded retry (covers the race between spawning
    /// `ckprobe serve` and its listener coming up).
    pub fn connect(addr: &str, timeout_ms: u64) -> Result<ServeClient, ClientError> {
        let stream =
            connect_with_retry(addr, 10, 20).map_err(|e| ClientError::Io(e.to_string()))?;
        let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
        let reader = stream.try_clone().map_err(|e| ClientError::Io(e.to_string()))?;
        Ok(ServeClient {
            reader,
            frames: FrameReader::new(),
            writer: SharedWriter::new(stream),
            timeout_ms,
        })
    }

    /// Sends one RPC.
    pub fn send(&self, msg: &ServeMsg) -> Result<(), ClientError> {
        let body = encode_serve_body(msg)?;
        self.writer.send(FrameKind::Serve, &body).map_err(|e| ClientError::Io(e.to_string()))
    }

    /// Sends raw bytes as one `Serve` frame — the truncation and
    /// garbage-recovery tests drive malformed bodies through this.
    pub fn send_raw_body(&self, body: &[u8]) -> Result<(), ClientError> {
        self.writer.send(FrameKind::Serve, body).map_err(|e| ClientError::Io(e.to_string()))
    }

    /// Receives the next RPC, skipping heartbeats; the service's
    /// `Error` frames come back as [`ClientError::Remote`].
    pub fn recv(&mut self) -> Result<ServeMsg, ClientError> {
        let deadline = Deadline::after_ms(self.timeout_ms);
        loop {
            let frame = self.frames.read_frame(&mut self.reader, &deadline)?;
            match frame.kind {
                FrameKind::Serve => return Ok(decode_serve_body(&frame.body)?),
                FrameKind::Heartbeat => {}
                FrameKind::Error => {
                    return Err(ClientError::Remote(
                        String::from_utf8_lossy(&frame.body).into_owned(),
                    ))
                }
                _ => return Err(ClientError::Protocol("unexpected frame kind from service")),
            }
        }
    }

    /// Submits a job without waiting for its result.
    pub fn submit(&self, req: &JobRequest) -> Result<(), ClientError> {
        self.send(&ServeMsg::Submit(req.clone()))
    }

    /// Receives the next job result, whatever its job id (results
    /// stream back in completion order, not submit order).
    pub fn recv_result(&mut self) -> Result<JobResult, ClientError> {
        match self.recv()? {
            ServeMsg::Result(res) => Ok(res),
            _ => Err(ClientError::Protocol("expected a Result RPC")),
        }
    }

    /// Submit-and-wait for a single job.
    pub fn run_job(&mut self, req: &JobRequest) -> Result<JobResult, ClientError> {
        self.submit(req)?;
        self.recv_result()
    }

    /// Fetches a counter snapshot. Drain any outstanding job results
    /// first — the next serve RPC on the wire must be the Stats reply.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        self.send(&ServeMsg::StatsRequest)?;
        match self.recv()? {
            ServeMsg::Stats(snap) => Ok(snap),
            _ => Err(ClientError::Protocol("expected a Stats RPC")),
        }
    }

    /// Asks the service to drain and stop; returns its lifetime
    /// completed-job count from the acknowledgement.
    pub fn shutdown(&mut self) -> Result<u64, ClientError> {
        self.send(&ServeMsg::Shutdown)?;
        match self.recv()? {
            ServeMsg::ShutdownAck { jobs_completed } => Ok(jobs_completed),
            _ => Err(ClientError::Protocol("expected a ShutdownAck RPC")),
        }
    }
}
