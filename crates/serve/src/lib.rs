//! `ckserve`: a long-running multi-tenant probe service over the warm
//! `TesterSession` substrate.
//!
//! The repo's engine stack already owns everything a service needs —
//! warm sessions with zero-allocation reruns, the length-prefixed
//! frame transport of the distributed executor, typed `ConfigError` /
//! `FrameError` failure paths — but until this crate nothing put
//! *sustained, heterogeneous, untrusted* traffic on them. `ck_serve`
//! is that front door:
//!
//! - [`rpc`] — the `ServeMsg` RPC grammar (Submit / Result / Stats /
//!   Shutdown) riding [`ck_congest::net::frame::FrameKind::Serve`]
//!   frames, encoded through a [`ck_congest::message::WireCodec`]
//!   implementation so the codec seam stays the one wire format in
//!   the repo. Every decode is total: any byte prefix is a typed
//!   error, never a panic, never an over-read.
//! - [`serve`] — the service itself: a `std::net` accept loop plus a
//!   worker-thread pool holding one warm
//!   [`ck_core::session::TesterSession`] each, recycling arenas across
//!   jobs exactly as `test_batch` does. Bad jobs fail *that client*
//!   with the job id echoed back; admission control sheds load with a
//!   typed [`rpc::ServeError::Overloaded`] backpressure frame; idle
//!   sessions are reclaimed; shutdown drains gracefully.
//! - [`client`] — a small blocking client used by `ckprobe submit`,
//!   the soak tests, and the bench harness.

pub mod client;
pub mod rpc;
pub mod serve;

pub use client::{ClientError, ServeClient};
pub use rpc::{
    JobRequest, JobResult, JobVerdict, LatencySummary, ServeError, ServeMsg, StatsSnapshot,
};
pub use serve::{BoundServer, LatencyHistogram, ServeOptions, ServerHandle};
