//! The `ServeMsg` RPC grammar: everything that crosses a probe-service
//! link, as one self-describing byte body inside a
//! [`FrameKind::Serve`] frame.
//!
//! The transport stays the repo's one wire format — the
//! length-prefixed `[kind u8][len u32 LE][body]` frame of
//! [`ck_congest::net::frame`] — and the body is produced and consumed
//! by [`ServeCodec`], a [`WireCodec`] implementation, so the exact-bit
//! contract (`encode` writes precisely [`WireMessage::wire_bits`]
//! bits; `decode` of exactly those bits returns an equal message) holds
//! on this seam too.
//!
//! Every RPC body starts with a tag byte:
//!
//! ```text
//! body = [tag u8][payload]
//!
//! tag 1  Submit       [job_id u64][graph bytes][k u32][eps f64][seed u64]
//!                     [reps u8 ∈ {0,1}] [reps = 1 → repetitions u32]
//! tag 2  Result       [job_id u64][ok u8 ∈ {0,1}]
//!                     [ok = 1 → verdict]   [ok = 0 → refusal]
//! tag 3  StatsRequest (empty)
//! tag 4  Stats        snapshot (see below)
//! tag 5  Shutdown     (empty)
//! tag 6  ShutdownAck  [jobs_completed u64]
//!
//! verdict = [reject u8][wall_us u64][verdicts bytes]
//! ```
//!
//! All integers are little-endian; `bytes` fields are a `u32 LE`
//! length prefix followed by that many raw bytes
//! ([`ByteWriter::bytes`]). `graph` is the edge-list interchange text
//! (the same form the distributed executor ships in its `Spec`
//! frames), and `verdicts` is the [`ck_core::dist::encode_verdicts`]
//! body — per-node verdicts including rejection witnesses, so a served
//! result can be compared bit for bit against a direct
//! `TesterSession` run.
//!
//! A `refusal` is a [`ServeError`]:
//!
//! ```text
//! refusal = [err u8][payload]
//!   err 1  Config(KOutOfRange)    [k u64]
//!   err 2  Config(EpsOutOfRange)  [eps f64]
//!   err 3  Config(LossOutOfRange) [loss f64]
//!   err 4  GraphTooLarge          [n u64][max u64]
//!   err 5  Overloaded             [in_flight u32][budget u32]
//!   err 6  Draining               (empty)
//!   err 7  Engine                 [detail bytes (UTF-8)]
//! ```
//!
//! The `Stats` snapshot payload, in field order:
//!
//! ```text
//! [workers u32][queue_depth u32][in_flight u32][pool_outstanding u64]
//! [jobs_submitted u64][jobs_completed u64][jobs_refused u64]
//! [sessions_reclaimed u64][slot_takes u64][slot_misses u64]
//! [lat_count u64][lat_p50_us u64][lat_p99_us u64][lat_max_us u64]
//! ```
//!
//! Decoding is **total**: every byte prefix of every encoded message
//! fails with a typed [`FrameError`] (the truncation suite proves it
//! per prefix), unknown tags are [`FrameError::BadBody`], and a
//! well-formed message followed by trailing bytes is rejected by
//! [`ByteReader::finish`]. Submitted configurations are deliberately
//! *not* validated here — admission control in [`crate::serve`] owns
//! that, so a hostile `k = u32::MAX` decodes fine and is refused with
//! a typed error frame instead of being dropped at the frame layer.

use std::io::Read;

use ck_congest::graph::Graph;
use ck_congest::message::{BitReader, BitWriter, CodecError, WireCodec, WireMessage, WireParams};
use ck_congest::net::frame::{
    ByteReader, ByteWriter, Deadline, FrameError, FrameKind, FrameReader,
};
use ck_core::dist::{decode_verdicts, encode_verdicts};
use ck_core::tester::{ConfigError, NodeVerdict, TesterConfig};

/// One client job: a graph plus the tester parameters to run it under.
#[derive(Clone, Debug)]
pub struct JobRequest {
    /// Client-chosen id, echoed on the matching [`JobResult`] — the
    /// only correlation between a submit and its (completion-ordered)
    /// result.
    pub job_id: u64,
    /// The input graph.
    pub graph: Graph,
    /// Cycle length `k` (unvalidated on the wire; admission validates).
    pub k: u32,
    /// Property-testing parameter `ε` (unvalidated on the wire).
    pub eps: f64,
    /// Phase-1 master seed.
    pub seed: u64,
    /// Repetition override; `None` runs the paper schedule.
    pub repetitions: Option<u32>,
}

impl JobRequest {
    /// The tester configuration this request asks for — possibly out
    /// of domain; callers validate via [`TesterConfig::validate`].
    pub fn tester_config(&self) -> TesterConfig {
        let mut cfg = TesterConfig::new(self.k as usize, self.eps, self.seed);
        cfg.repetitions = self.repetitions;
        cfg
    }
}

/// A completed job's verdict payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobVerdict {
    /// Network-level reject (any node rejected in any repetition).
    pub reject: bool,
    /// Service-side wall-clock execution time, microseconds. Measured
    /// data about the run, not an input to any verdict bit.
    pub wall_us: u64,
    /// Per-node verdicts, bit-identical to a direct
    /// [`ck_core::session::TesterSession::test`] run of the same job.
    pub verdicts: Vec<NodeVerdict>,
}

/// Why the service refused (or failed) a job — the typed outcomes the
/// tentpole demands: a bad job fails *that client*, never the process.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// The job's tester configuration is out of domain
    /// ([`TesterConfig::validate`] / `try_repetitions_for` failed).
    Config(ConfigError),
    /// The job's graph exceeds the service's warm-workspace admission
    /// cap.
    GraphTooLarge {
        /// Submitted node count.
        n: u64,
        /// The service's cap.
        max: u64,
    },
    /// The in-flight budget is full — backpressure; retry later.
    Overloaded {
        /// Jobs admitted and not yet answered at refusal time.
        in_flight: u32,
        /// The configured budget.
        budget: u32,
    },
    /// The service is draining after a shutdown request and admits
    /// nothing new.
    Draining,
    /// The engine failed executing the job (e.g. a bandwidth-policy
    /// violation) — surfaced verbatim, never retried.
    Engine(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(e) => write!(f, "config rejected: {e}"),
            ServeError::GraphTooLarge { n, max } => {
                write!(f, "graph of {n} nodes exceeds the admission cap of {max}")
            }
            ServeError::Overloaded { in_flight, budget } => {
                write!(f, "overloaded: {in_flight} jobs in flight against a budget of {budget}")
            }
            ServeError::Draining => write!(f, "service is draining and admits no new jobs"),
            ServeError::Engine(detail) => write!(f, "engine failure: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// The service's answer to one [`JobRequest`], streamed back in
/// completion order.
#[derive(Clone, Debug, PartialEq)]
pub struct JobResult {
    /// The submitting client's job id, echoed back — including on
    /// every refusal path.
    pub job_id: u64,
    /// Verdict or typed refusal.
    pub outcome: Result<JobVerdict, ServeError>,
}

/// Latency quantiles of the per-job service histogram, microseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Jobs measured.
    pub count: u64,
    /// Median job latency (submit-to-result, service side).
    pub p50_us: u64,
    /// 99th-percentile job latency.
    pub p99_us: u64,
    /// Worst observed job latency.
    pub max_us: u64,
}

/// The Stats RPC payload: queue/budget gauges, lifetime counters, the
/// aggregated warm-session [`ck_congest::engine::SlotStats`], and the
/// latency histogram summary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Worker-thread (= warm session) count.
    pub workers: u32,
    /// Jobs admitted and waiting for a worker.
    pub queue_depth: u32,
    /// Jobs admitted and not yet answered (queued + executing).
    pub in_flight: u32,
    /// Jobs currently checked out of the queue by workers — 0 after a
    /// graceful drain, by construction.
    pub pool_outstanding: u64,
    /// Submits seen (admitted or refused).
    pub jobs_submitted: u64,
    /// Jobs answered with a verdict.
    pub jobs_completed: u64,
    /// Jobs answered with a typed refusal (config, admission, engine).
    pub jobs_refused: u64,
    /// Warm sessions torn down by the idle reclaimer.
    pub sessions_reclaimed: u64,
    /// Aggregated slot-array takes over all pool sessions, living and
    /// reclaimed ([`ck_core::session::TesterSession::slot_stats`]).
    pub slot_takes: u64,
    /// Aggregated slot-array misses; `takes - misses` warm jobs reused
    /// an arena instead of allocating one.
    pub slot_misses: u64,
    /// Per-job latency summary.
    pub latency: LatencySummary,
}

/// One probe-service RPC. See the module doc for the byte layout.
// The size skew is real (Submit carries a whole graph) but harmless:
// every ServeMsg is transient — decoded, dispatched, dropped — and
// boxing the payload would put an allocation on the submit path.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum ServeMsg {
    /// Client → service: run a job.
    Submit(JobRequest),
    /// Service → client: a job's verdict or typed refusal.
    Result(JobResult),
    /// Client → service: report counters.
    StatsRequest,
    /// Service → client: the counters.
    Stats(StatsSnapshot),
    /// Client → service: stop admitting, drain, then acknowledge.
    Shutdown,
    /// Service → client: drain complete.
    ShutdownAck {
        /// Jobs answered with a verdict over the service's lifetime.
        jobs_completed: u64,
    },
}

const TAG_SUBMIT: u8 = 1;
const TAG_RESULT: u8 = 2;
const TAG_STATS_REQUEST: u8 = 3;
const TAG_STATS: u8 = 4;
const TAG_SHUTDOWN: u8 = 5;
const TAG_SHUTDOWN_ACK: u8 = 6;

const ERR_K: u8 = 1;
const ERR_EPS: u8 = 2;
const ERR_LOSS: u8 = 3;
const ERR_TOO_LARGE: u8 = 4;
const ERR_OVERLOADED: u8 = 5;
const ERR_DRAINING: u8 = 6;
const ERR_ENGINE: u8 = 7;

fn encode_error(w: &mut ByteWriter, e: &ServeError) {
    match e {
        ServeError::Config(ConfigError::KOutOfRange { k }) => {
            w.u8(ERR_K);
            w.u64(*k as u64);
        }
        ServeError::Config(ConfigError::EpsOutOfRange { eps }) => {
            w.u8(ERR_EPS);
            w.f64(*eps);
        }
        ServeError::Config(ConfigError::LossOutOfRange { loss }) => {
            w.u8(ERR_LOSS);
            w.f64(*loss);
        }
        ServeError::GraphTooLarge { n, max } => {
            w.u8(ERR_TOO_LARGE);
            w.u64(*n);
            w.u64(*max);
        }
        ServeError::Overloaded { in_flight, budget } => {
            w.u8(ERR_OVERLOADED);
            w.u32(*in_flight);
            w.u32(*budget);
        }
        ServeError::Draining => w.u8(ERR_DRAINING),
        ServeError::Engine(detail) => {
            w.u8(ERR_ENGINE);
            w.bytes(detail.as_bytes());
        }
    }
}

fn decode_error(r: &mut ByteReader<'_>) -> Result<ServeError, FrameError> {
    Ok(match r.u8()? {
        ERR_K => ServeError::Config(ConfigError::KOutOfRange { k: r.u64()? as usize }),
        ERR_EPS => ServeError::Config(ConfigError::EpsOutOfRange { eps: r.f64()? }),
        ERR_LOSS => ServeError::Config(ConfigError::LossOutOfRange { loss: r.f64()? }),
        ERR_TOO_LARGE => ServeError::GraphTooLarge { n: r.u64()?, max: r.u64()? },
        ERR_OVERLOADED => ServeError::Overloaded { in_flight: r.u32()?, budget: r.u32()? },
        ERR_DRAINING => ServeError::Draining,
        ERR_ENGINE => {
            let detail = std::str::from_utf8(r.bytes()?)
                .map_err(|_| FrameError::BadBody("engine detail is not UTF-8"))?
                .to_string();
            ServeError::Engine(detail)
        }
        _ => return Err(FrameError::BadBody("unknown serve error tag")),
    })
}

impl ServeMsg {
    /// Encodes the RPC as a `Serve` frame body (see the module doc for
    /// the layout).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            ServeMsg::Submit(req) => {
                w.u8(TAG_SUBMIT);
                w.u64(req.job_id);
                w.bytes(req.graph.to_edge_list().as_bytes());
                w.u32(req.k);
                w.f64(req.eps);
                w.u64(req.seed);
                match req.repetitions {
                    Some(reps) => {
                        w.u8(1);
                        w.u32(reps);
                    }
                    None => w.u8(0),
                }
            }
            ServeMsg::Result(res) => {
                w.u8(TAG_RESULT);
                w.u64(res.job_id);
                match &res.outcome {
                    Ok(v) => {
                        w.u8(1);
                        w.u8(v.reject as u8);
                        w.u64(v.wall_us);
                        w.bytes(&encode_verdicts(&v.verdicts));
                    }
                    Err(e) => {
                        w.u8(0);
                        encode_error(&mut w, e);
                    }
                }
            }
            ServeMsg::StatsRequest => w.u8(TAG_STATS_REQUEST),
            ServeMsg::Stats(s) => {
                w.u8(TAG_STATS);
                w.u32(s.workers);
                w.u32(s.queue_depth);
                w.u32(s.in_flight);
                w.u64(s.pool_outstanding);
                w.u64(s.jobs_submitted);
                w.u64(s.jobs_completed);
                w.u64(s.jobs_refused);
                w.u64(s.sessions_reclaimed);
                w.u64(s.slot_takes);
                w.u64(s.slot_misses);
                w.u64(s.latency.count);
                w.u64(s.latency.p50_us);
                w.u64(s.latency.p99_us);
                w.u64(s.latency.max_us);
            }
            ServeMsg::Shutdown => w.u8(TAG_SHUTDOWN),
            ServeMsg::ShutdownAck { jobs_completed } => {
                w.u8(TAG_SHUTDOWN_ACK);
                w.u64(*jobs_completed);
            }
        }
        w.0
    }

    /// Decodes a `Serve` frame body; all failures are typed, trailing
    /// bytes are rejected, and nothing is validated beyond structure
    /// (domain checks belong to admission control).
    pub fn from_bytes(body: &[u8]) -> Result<ServeMsg, FrameError> {
        let mut r = ByteReader::new(body);
        let msg = match r.u8()? {
            TAG_SUBMIT => {
                let job_id = r.u64()?;
                let edge_text = std::str::from_utf8(r.bytes()?)
                    .map_err(|_| FrameError::BadBody("graph text is not UTF-8"))?;
                let graph = Graph::from_edge_list(edge_text)
                    .map_err(|_| FrameError::BadBody("unparsable graph edge list"))?;
                let k = r.u32()?;
                let eps = r.f64()?;
                let seed = r.u64()?;
                let repetitions = if r.u8()? != 0 { Some(r.u32()?) } else { None };
                ServeMsg::Submit(JobRequest { job_id, graph, k, eps, seed, repetitions })
            }
            TAG_RESULT => {
                let job_id = r.u64()?;
                let outcome = if r.u8()? != 0 {
                    let reject = r.u8()? != 0;
                    let wall_us = r.u64()?;
                    let verdicts = decode_verdicts(r.bytes()?)?;
                    Ok(JobVerdict { reject, wall_us, verdicts })
                } else {
                    Err(decode_error(&mut r)?)
                };
                ServeMsg::Result(JobResult { job_id, outcome })
            }
            TAG_STATS_REQUEST => ServeMsg::StatsRequest,
            TAG_STATS => ServeMsg::Stats(StatsSnapshot {
                workers: r.u32()?,
                queue_depth: r.u32()?,
                in_flight: r.u32()?,
                pool_outstanding: r.u64()?,
                jobs_submitted: r.u64()?,
                jobs_completed: r.u64()?,
                jobs_refused: r.u64()?,
                sessions_reclaimed: r.u64()?,
                slot_takes: r.u64()?,
                slot_misses: r.u64()?,
                latency: LatencySummary {
                    count: r.u64()?,
                    p50_us: r.u64()?,
                    p99_us: r.u64()?,
                    max_us: r.u64()?,
                },
            }),
            TAG_SHUTDOWN => ServeMsg::Shutdown,
            TAG_SHUTDOWN_ACK => ServeMsg::ShutdownAck { jobs_completed: r.u64()? },
            _ => return Err(FrameError::BadBody("unknown serve RPC tag")),
        };
        r.finish()?;
        Ok(msg)
    }
}

/// Frame-independent [`WireParams`] for the serve link: RPCs are
/// byte-oriented and self-describing, so no graph-derived field widths
/// apply. The codec ignores these values; they exist because the
/// [`WireCodec`] seam threads params through every encode/decode.
pub fn serve_params() -> WireParams {
    WireParams { n: 0, m: 0, id_bits: 64, rank_bits: 64 }
}

impl WireMessage for ServeMsg {
    /// The canonical encoding is the byte body of
    /// [`ServeMsg::to_bytes`], so the wire cost is exactly its length
    /// in bits.
    fn wire_bits(&self, _params: &WireParams) -> u64 {
        self.to_bytes().len() as u64 * 8
    }
}

/// The [`WireCodec`] carrying [`ServeMsg`] on `Serve` frames: the
/// canonical bit string is the [`ServeMsg::to_bytes`] body pushed
/// byte-aligned through the [`BitWriter`], so
/// `encode_to_buf(..).as_bytes()` *is* the frame body and the
/// exact-bit contract (`wire_bits` bits written, equal message
/// decoded) holds by construction.
pub struct ServeCodec;

impl WireCodec for ServeCodec {
    type Msg = ServeMsg;

    fn encode(
        &self,
        msg: &ServeMsg,
        _params: &WireParams,
        out: &mut BitWriter,
    ) -> Result<u64, CodecError> {
        let bytes = msg.to_bytes();
        for &b in &bytes {
            // Cannot overflow: a u8 always fits an 8-bit field, so the
            // writer is never left partially advanced.
            out.push_bits(u64::from(b), 8)?;
        }
        Ok(bytes.len() as u64 * 8)
    }

    fn decode(
        &self,
        _params: &WireParams,
        reader: &mut BitReader<'_>,
    ) -> Result<ServeMsg, CodecError> {
        let rem = reader.remaining_bits();
        if !rem.is_multiple_of(8) {
            return Err(CodecError::Invalid("serve frame is not byte-aligned"));
        }
        let mut bytes = Vec::with_capacity((rem / 8) as usize);
        for _ in 0..rem / 8 {
            bytes.push(reader.read_bits(8)? as u8);
        }
        ServeMsg::from_bytes(&bytes).map_err(|e| match e {
            FrameError::Codec(c) => c,
            FrameError::BadBody(what) => CodecError::Invalid(what),
            FrameError::Truncated => CodecError::Truncated { needed: 8, remaining: 0 },
            _ => CodecError::Invalid("malformed serve RPC body"),
        })
    }
}

/// Encodes one RPC as a ready-to-send `Serve` frame body, through the
/// codec seam.
pub fn encode_serve_body(msg: &ServeMsg) -> Result<Vec<u8>, FrameError> {
    let buf = ServeCodec.encode_to_buf(msg, &serve_params()).map_err(FrameError::Codec)?;
    Ok(buf.as_bytes().to_vec())
}

/// Decodes a `Serve` frame body through the codec seam. Total: every
/// prefix, every unknown tag, and every trailing byte is a typed
/// error.
pub fn decode_serve_body(body: &[u8]) -> Result<ServeMsg, FrameError> {
    let mut reader = BitReader::new(body, body.len() as u64 * 8);
    ServeCodec.decode(&serve_params(), &mut reader).map_err(FrameError::Codec)
}

/// Reads one frame off a serve link and sorts it for the caller's
/// loop: `Ok(Some(msg))` for an RPC, `Ok(None)` for a tolerated
/// non-RPC frame (heartbeats), and `Err` for everything else. Body
/// decode failures come back as [`FrameError::Codec`] /
/// [`FrameError::BadBody`], which callers may treat as *recoverable*
/// (the frame boundary was intact, so the stream can continue), and
/// [`FrameError::TimedOut`] is a benign poll tick — `frames` keeps
/// any half-arrived frame buffered, so the next call resumes it
/// instead of desyncing the stream (the reason this takes a
/// persistent [`FrameReader`] rather than a bare `Read`). Framing
/// failures (`Truncated`, `BadKind`, `Oversized`, `Io`) still leave
/// the stream position untrusted: drop the connection.
pub fn read_serve_frame(
    frames: &mut FrameReader,
    r: &mut impl Read,
    deadline: &Deadline,
) -> Result<Option<ServeMsg>, FrameError> {
    let frame = frames.read_frame(r, deadline)?;
    match frame.kind {
        FrameKind::Serve => decode_serve_body(&frame.body).map(Some),
        FrameKind::Heartbeat => Ok(None),
        _ => Err(FrameError::BadBody("unexpected frame kind on a serve link")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ck_congest::graph::GraphBuilder;
    use ck_core::decide::RejectWitness;
    use ck_core::msg::EdgeTag;
    use ck_core::seq::IdSeq;
    use ck_core::tester::Rejection;

    fn small_graph() -> Graph {
        GraphBuilder::new(5).edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).build().unwrap()
    }

    fn sample_msgs() -> Vec<ServeMsg> {
        let witness = Rejection {
            repetition: 2,
            tag: EdgeTag { rank: 7, lo: 1, hi: 4 },
            witness: RejectWitness {
                l1: IdSeq::from_slice(&[4, 9]),
                l2: IdSeq::from_slice(&[2]),
                myid: 9,
                k: 5,
            },
        };
        vec![
            ServeMsg::Submit(JobRequest {
                job_id: 42,
                graph: small_graph(),
                k: 5,
                eps: 0.15,
                seed: 11,
                repetitions: Some(2),
            }),
            ServeMsg::Submit(JobRequest {
                job_id: u64::MAX,
                graph: small_graph(),
                k: u32::MAX,
                eps: f64::NAN,
                seed: 0,
                repetitions: None,
            }),
            ServeMsg::Result(JobResult {
                job_id: 42,
                outcome: Ok(JobVerdict {
                    reject: true,
                    wall_us: 1234,
                    verdicts: vec![
                        NodeVerdict::default(),
                        NodeVerdict {
                            rejected: true,
                            first_rejection: Some(Box::new(witness)),
                            max_sent_seqs: 3,
                            pool_outstanding: 0,
                        },
                    ],
                }),
            }),
            ServeMsg::Result(JobResult {
                job_id: 7,
                outcome: Err(ServeError::Config(ConfigError::KOutOfRange { k: 99 })),
            }),
            ServeMsg::Result(JobResult {
                job_id: 8,
                outcome: Err(ServeError::Config(ConfigError::EpsOutOfRange { eps: 0.0 })),
            }),
            ServeMsg::Result(JobResult {
                job_id: 9,
                outcome: Err(ServeError::GraphTooLarge { n: 4096, max: 64 }),
            }),
            ServeMsg::Result(JobResult {
                job_id: 10,
                outcome: Err(ServeError::Overloaded { in_flight: 17, budget: 16 }),
            }),
            ServeMsg::Result(JobResult { job_id: 11, outcome: Err(ServeError::Draining) }),
            ServeMsg::Result(JobResult {
                job_id: 12,
                outcome: Err(ServeError::Engine("bandwidth cap exceeded".to_string())),
            }),
            ServeMsg::StatsRequest,
            ServeMsg::Stats(StatsSnapshot {
                workers: 4,
                queue_depth: 3,
                in_flight: 7,
                pool_outstanding: 4,
                jobs_submitted: 100,
                jobs_completed: 90,
                jobs_refused: 3,
                sessions_reclaimed: 2,
                slot_takes: 88,
                slot_misses: 6,
                latency: LatencySummary { count: 90, p50_us: 1500, p99_us: 9000, max_us: 12000 },
            }),
            ServeMsg::Shutdown,
            ServeMsg::ShutdownAck { jobs_completed: 90 },
        ]
    }

    /// Structural equality good enough for roundtrips: `Graph` has no
    /// `PartialEq`, so submits compare via the edge-list interchange
    /// form the wire actually carries.
    fn assert_roundtrip_eq(a: &ServeMsg, b: &ServeMsg) {
        match (a, b) {
            (ServeMsg::Submit(x), ServeMsg::Submit(y)) => {
                assert_eq!(x.job_id, y.job_id);
                assert_eq!(x.graph.to_edge_list(), y.graph.to_edge_list());
                assert_eq!(x.k, y.k);
                assert_eq!(x.eps.to_bits(), y.eps.to_bits(), "NaN-exact eps roundtrip");
                assert_eq!(x.seed, y.seed);
                assert_eq!(x.repetitions, y.repetitions);
            }
            (ServeMsg::Result(x), ServeMsg::Result(y)) => assert_eq!(x, y),
            (ServeMsg::StatsRequest, ServeMsg::StatsRequest) => {}
            (ServeMsg::Stats(x), ServeMsg::Stats(y)) => assert_eq!(x, y),
            (ServeMsg::Shutdown, ServeMsg::Shutdown) => {}
            (
                ServeMsg::ShutdownAck { jobs_completed: x },
                ServeMsg::ShutdownAck { jobs_completed: y },
            ) => {
                assert_eq!(x, y)
            }
            (a, b) => panic!("variant mismatch: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn every_sample_roundtrips_both_paths() {
        for msg in sample_msgs() {
            let direct = msg.to_bytes();
            assert_roundtrip_eq(&msg, &ServeMsg::from_bytes(&direct).unwrap());
            // The codec path frames identical bytes (the codec *is*
            // the byte encoding) and satisfies the exact-bit contract.
            let buf = ServeCodec.encode_to_buf(&msg, &serve_params()).unwrap();
            assert_eq!(buf.as_bytes(), &direct[..]);
            assert_eq!(buf.len_bits(), msg.wire_bits(&serve_params()));
            assert_roundtrip_eq(&msg, &decode_serve_body(buf.as_bytes()).unwrap());
        }
    }

    #[test]
    fn every_prefix_fails_typed() {
        for msg in sample_msgs() {
            let body = msg.to_bytes();
            for cut in 0..body.len() {
                let err = ServeMsg::from_bytes(&body[..cut]);
                assert!(err.is_err(), "prefix {cut} of {msg:?} decoded");
                let codec = decode_serve_body(&body[..cut]);
                assert!(codec.is_err(), "codec prefix {cut} of {msg:?} decoded");
            }
            // One trailing byte is equally typed (no silent over-read).
            let mut long = body.clone();
            long.push(0);
            assert!(ServeMsg::from_bytes(&long).is_err(), "trailing byte accepted: {msg:?}");
        }
    }

    #[test]
    fn unknown_tags_are_typed() {
        for tag in [0u8, 7, 8, 200, 255] {
            assert!(
                matches!(ServeMsg::from_bytes(&[tag]), Err(FrameError::BadBody(_))),
                "tag {tag}"
            );
        }
        // Unknown refusal tag inside an otherwise well-formed Result.
        let mut w = ByteWriter::new();
        w.u8(TAG_RESULT);
        w.u64(1);
        w.u8(0);
        w.u8(99);
        assert!(matches!(ServeMsg::from_bytes(&w.0), Err(FrameError::BadBody(_))));
    }
}
