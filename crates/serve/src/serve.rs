//! The probe service: a `std::net` accept loop feeding a worker-thread
//! pool that holds one warm [`TesterSession`] per worker.
//!
//! Concurrency shape (the PR 7 executor idiom, turned long-running):
//!
//! - The acceptor thread polls a nonblocking listener and spawns one
//!   handler thread per client connection.
//! - Handlers parse RPC frames, run **admission control** inline
//!   (config validation, graph-size cap, in-flight budget, drain
//!   state — every refusal a typed [`ServeError`] frame with the job
//!   id echoed), and push admitted jobs onto one shared queue.
//! - Workers pop jobs, run them through [`warm_job`] — reconfigure the
//!   session for the job's parameters, then
//!   [`TesterSession::test_into`] on a per-worker recycled
//!   [`TesterRun`], the zero-steady-state-allocation path the
//!   alloc-gate suite pins — and stream results back on the
//!   submitting client's writer in completion order.
//! - A worker idle for `idle_reclaim_ms` drops its session (arenas
//!   and all) and rebuilds on the next job; the reclaim is counted in
//!   the Stats RPC.
//! - `Shutdown` flips the service into draining (new submits refused
//!   with [`ServeError::Draining`]), waits for the in-flight count to
//!   reach zero, acknowledges with the lifetime completion count, and
//!   stops the pool.
//!
//! This file is determinism-lint-critical (`serve` stem): verdict
//! bits come exclusively from the session/engine layers below. The
//! wall-clock reads here — latency histograms, idle-reclaim timers,
//! read deadlines — are measurement and liveness plumbing, each
//! carrying a reasoned `ck-lint` allow.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;
// ck-lint: allow(determinism, reason = "Instant feeds latency histograms and idle-reclaim timers only; verdict bits never depend on it")
use std::time::Instant;

use ck_congest::engine::{EngineConfig, Executor};
use ck_congest::graph::Graph;
use ck_congest::net::frame::{Deadline, FrameError, FrameKind, FrameReader};
use ck_congest::net::link::SharedWriter;
use ck_core::session::TesterSession;
use ck_core::tester::{TesterConfig, TesterRun};

use crate::rpc::{
    encode_serve_body, read_serve_frame, JobResult, JobVerdict, LatencySummary, ServeError,
    ServeMsg, StatsSnapshot,
};

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Bind address; port 0 picks a free port (read it back from
    /// [`BoundServer::addr`]).
    pub addr: String,
    /// Worker threads = warm sessions in the pool.
    pub workers: usize,
    /// Admission cap on a job graph's node count (the warm-workspace
    /// bound): larger graphs are refused with
    /// [`ServeError::GraphTooLarge`].
    pub max_nodes: usize,
    /// Admission cap on jobs in flight (queued + executing): beyond
    /// it, submits get an [`ServeError::Overloaded`] backpressure
    /// frame.
    pub inflight_budget: u32,
    /// A worker idle this long tears down its warm session, returning
    /// arena memory; the next job rebuilds it.
    pub idle_reclaim_ms: u64,
    /// Socket poll granularity (read deadlines, accept backoff) — a
    /// liveness knob, not a correctness one.
    pub poll_ms: u64,
    /// Cap on concurrently connected clients (one handler thread
    /// each). At the cap a new connection is answered with an `Error`
    /// frame and closed, so the service's thread count and handler
    /// bookkeeping stay bounded over its lifetime.
    pub max_conns: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            max_nodes: 1 << 20,
            inflight_budget: 256,
            idle_reclaim_ms: 30_000,
            poll_ms: 25,
            max_conns: 1024,
        }
    }
}

/// The engine template every pool session runs: the sequential fused
/// path (bit-identical to the parallel executors, and the layout the
/// zero-allocation warm-rerun gate is proved on). Exposed so oracles
/// in tests and benches execute the exact configuration the service
/// does.
pub fn engine_template() -> EngineConfig {
    EngineConfig { executor: Executor::Sequential, ..EngineConfig::default() }
}

/// One warm job on a pool session: revalidate-and-swap the
/// configuration ([`TesterSession::reconfigure`]), then run into the
/// recycled `run` buffer. On the steady state (same graph size, warm
/// arenas) this performs **zero** heap operations — the claim
/// `tests/alloc_gate.rs` turns into a CI gate for the serve path.
pub fn warm_job(
    session: &mut TesterSession,
    graph: &Graph,
    cfg: TesterConfig,
    run: &mut TesterRun,
) -> Result<(), ServeError> {
    session.reconfigure(cfg).map_err(ServeError::Config)?;
    session.test_into(graph, run).map_err(|e| ServeError::Engine(e.to_string()))
}

/// Power-of-two-bucket latency histogram: bucket `i` holds samples
/// whose microsecond count has bit length `i`, so quantiles come back
/// as the covering bucket's upper bound. Fixed-size, allocation-free,
/// and mergeable by field addition. 65 buckets, because a `u64` has
/// bit lengths 0..=64 — every sample lands in exactly one bucket and
/// contributes quantile mass, even `u64::MAX`.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    buckets: [u64; 65],
    count: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: [0; 65], count: 0, max_us: 0 }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one sample.
    pub fn record_us(&mut self, us: u64) {
        let bucket = (64 - us.leading_zeros()) as usize;
        if let Some(slot) = self.buckets.get_mut(bucket) {
            *slot += 1;
        }
        self.count += 1;
        self.max_us = self.max_us.max(us);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The upper bound of the bucket at or below which at least
    /// `num/den` of the recorded mass lies (0 when empty).
    pub fn quantile_us(&self, num: u64, den: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let need = (self.count * num).div_ceil(den.max(1));
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= need {
                // Bucket i covers bit-length-i values: upper bound
                // 2^i - 1, except the last bucket (bit length 64),
                // which tops out at u64::MAX.
                return if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
            }
        }
        self.max_us
    }

    /// p50/p99/max summary for the Stats RPC.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            p50_us: self.quantile_us(1, 2),
            p99_us: self.quantile_us(99, 100),
            max_us: self.max_us,
        }
    }
}

/// An admitted job waiting for (or on) a worker.
struct Job {
    job_id: u64,
    graph: Graph,
    cfg: TesterConfig,
    reply: SharedWriter<TcpStream>,
    // ck-lint: allow(determinism, reason = "submit timestamp feeds the latency histogram only")
    submitted: Instant,
}

/// Lifetime counters behind one short-critical-section lock.
#[derive(Default)]
struct StatsInner {
    jobs_submitted: u64,
    jobs_completed: u64,
    jobs_refused: u64,
    sessions_reclaimed: u64,
    slot_takes: u64,
    slot_misses: u64,
    latency: LatencyHistogram,
}

/// State shared by the acceptor, handlers, and workers.
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    work_cv: Condvar,
    stats: Mutex<StatsInner>,
    /// Admitted and unanswered (queued + executing).
    in_flight: AtomicU32,
    /// Checked out of the queue by a worker right now.
    executing: AtomicU64,
    /// Refuse new admissions; drain what's in.
    draining: AtomicBool,
    /// Everything winds down.
    stop: AtomicBool,
}

impl Shared {
    fn new() -> Self {
        Shared {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            stats: Mutex::new(StatsInner::default()),
            in_flight: AtomicU32::new(0),
            executing: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
        }
    }

    /// Pops the next job, waiting at most `idle_ms`. `None` means
    /// either an idle tick or shutdown — the caller checks `stop`.
    fn next_job(&self, idle_ms: u64) -> Option<Job> {
        // Poisoning (a peer thread panicking mid-push) leaves the queue
        // structurally sound; refusing to serve would turn one dead
        // thread into a dead service.
        let mut q = self.queue.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(job) = q.pop_front() {
                return Some(job);
            }
            if self.stop.load(Ordering::SeqCst) {
                return None;
            }
            let (guard, timeout) = self
                .work_cv
                .wait_timeout(q, Duration::from_millis(idle_ms.max(1)))
                .unwrap_or_else(|p| p.into_inner());
            q = guard;
            if timeout.timed_out() {
                return None;
            }
        }
    }

    fn stats<R>(&self, f: impl FnOnce(&mut StatsInner) -> R) -> R {
        let mut s = self.stats.lock().unwrap_or_else(|p| p.into_inner());
        f(&mut s)
    }

    fn queue_depth(&self) -> u32 {
        self.queue.lock().unwrap_or_else(|p| p.into_inner()).len() as u32
    }

    fn snapshot(&self, workers: u32) -> StatsSnapshot {
        let queue_depth = self.queue_depth();
        let in_flight = self.in_flight.load(Ordering::SeqCst);
        let pool_outstanding = self.executing.load(Ordering::SeqCst);
        self.stats(|s| StatsSnapshot {
            workers,
            queue_depth,
            in_flight,
            pool_outstanding,
            jobs_submitted: s.jobs_submitted,
            jobs_completed: s.jobs_completed,
            jobs_refused: s.jobs_refused,
            sessions_reclaimed: s.sessions_reclaimed,
            slot_takes: s.slot_takes,
            slot_misses: s.slot_misses,
            latency: s.latency.summary(),
        })
    }
}

/// Best-effort RPC send: a vanished client is that client's problem,
/// never the service's.
fn send_msg(writer: &SharedWriter<TcpStream>, msg: &ServeMsg) {
    if let Ok(body) = encode_serve_body(msg) {
        let _ = writer.send(FrameKind::Serve, &body);
    }
}

/// The worker loop: one warm session, one recycled run buffer.
fn worker_loop(shared: Arc<Shared>, opts: Arc<ServeOptions>) {
    let mut session: Option<TesterSession> = None;
    let mut run = TesterRun::default();
    // Slot-stats folding base for the current session incarnation.
    let mut folded = (0u64, 0u64);
    loop {
        match shared.next_job(opts.idle_reclaim_ms) {
            Some(job) => {
                shared.executing.fetch_add(1, Ordering::SeqCst);
                // ck-lint: allow(determinism, reason = "job wall time is reported measurement, not verdict input")
                let t0 = Instant::now();
                let outcome = match session.as_mut() {
                    Some(s) => warm_job(s, &job.graph, job.cfg, &mut run),
                    None => match TesterSession::from_config(job.cfg, engine_template()) {
                        Ok(s) => {
                            folded = (0, 0);
                            warm_job(session.insert(s), &job.graph, job.cfg, &mut run)
                        }
                        Err(e) => Err(ServeError::Config(e)),
                    },
                };
                // ck-lint: allow(determinism, reason = "elapsed time lands in the verdict's wall_us metric field only")
                let wall_us = t0.elapsed().as_micros() as u64;
                let ok = outcome.is_ok();
                let outcome = outcome.map(|()| JobVerdict {
                    reject: run.reject,
                    wall_us,
                    verdicts: run.outcome.verdicts.clone(),
                });
                send_msg(&job.reply, &ServeMsg::Result(JobResult { job_id: job.job_id, outcome }));
                let delta = session
                    .as_ref()
                    .map(|s| {
                        let now = s.slot_stats();
                        let d = (now.takes - folded.0, now.misses - folded.1);
                        folded = (now.takes, now.misses);
                        d
                    })
                    .unwrap_or((0, 0));
                // ck-lint: allow(determinism, reason = "submit-to-result latency is histogram data only")
                let latency_us = job.submitted.elapsed().as_micros() as u64;
                shared.stats(|s| {
                    if ok {
                        s.jobs_completed += 1;
                    } else {
                        s.jobs_refused += 1;
                    }
                    s.slot_takes += delta.0;
                    s.slot_misses += delta.1;
                    s.latency.record_us(latency_us);
                });
                shared.executing.fetch_sub(1, Ordering::SeqCst);
                shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            }
            None => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                // Idle tick: return the warm arenas to the allocator.
                if session.take().is_some() {
                    folded = (0, 0);
                    shared.stats(|s| s.sessions_reclaimed += 1);
                }
            }
        }
    }
}

/// Admission control for one submit. Refusals echo the job id.
fn handle_submit(
    shared: &Shared,
    opts: &ServeOptions,
    writer: &SharedWriter<TcpStream>,
    req: crate::rpc::JobRequest,
) {
    shared.stats(|s| s.jobs_submitted += 1);
    let refusal = if shared.draining.load(Ordering::SeqCst) {
        Some(ServeError::Draining)
    } else if let Err(e) = req.tester_config().validate() {
        Some(ServeError::Config(e))
    } else if req.graph.n() > opts.max_nodes {
        Some(ServeError::GraphTooLarge { n: req.graph.n() as u64, max: opts.max_nodes as u64 })
    } else {
        match shared.in_flight.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |cur| {
            if cur >= opts.inflight_budget {
                None
            } else {
                Some(cur + 1)
            }
        }) {
            Ok(_) => {
                // A drain can begin between the check at the top and
                // this increment — and may already have observed
                // in_flight == 0 and stopped the pool. Re-check and
                // refund so no job is ever queued with no workers
                // left to answer it.
                if shared.draining.load(Ordering::SeqCst) {
                    shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                    Some(ServeError::Draining)
                } else {
                    None
                }
            }
            Err(cur) => {
                Some(ServeError::Overloaded { in_flight: cur, budget: opts.inflight_budget })
            }
        }
    };
    match refusal {
        Some(err) => {
            shared.stats(|s| s.jobs_refused += 1);
            send_msg(
                writer,
                &ServeMsg::Result(JobResult { job_id: req.job_id, outcome: Err(err) }),
            );
        }
        None => {
            let cfg = req.tester_config();
            let job = Job {
                job_id: req.job_id,
                graph: req.graph,
                cfg,
                reply: writer.clone(),
                // ck-lint: allow(determinism, reason = "submit timestamp feeds the latency histogram only")
                submitted: Instant::now(),
            };
            shared.queue.lock().unwrap_or_else(|p| p.into_inner()).push_back(job);
            shared.work_cv.notify_one();
        }
    }
}

/// Graceful drain: refuse new work, wait out the in-flight jobs, stop
/// the pool.
fn drain(shared: &Shared) -> u64 {
    shared.draining.store(true, Ordering::SeqCst);
    while shared.in_flight.load(Ordering::SeqCst) != 0 {
        thread::sleep(Duration::from_millis(2));
    }
    shared.stop.store(true, Ordering::SeqCst);
    shared.work_cv.notify_all();
    shared.stats(|s| s.jobs_completed)
}

/// One RPC dispatched; `false` ends the connection.
fn handle_msg(
    shared: &Shared,
    opts: &ServeOptions,
    writer: &SharedWriter<TcpStream>,
    msg: ServeMsg,
) -> bool {
    match msg {
        ServeMsg::Submit(req) => {
            handle_submit(shared, opts, writer, req);
            true
        }
        ServeMsg::StatsRequest => {
            send_msg(writer, &ServeMsg::Stats(shared.snapshot(opts.workers.max(1) as u32)));
            true
        }
        ServeMsg::Shutdown => {
            let jobs_completed = drain(shared);
            send_msg(writer, &ServeMsg::ShutdownAck { jobs_completed });
            false
        }
        // Service-bound links never carry service-to-client RPCs; the
        // framing is intact, so answer typed and keep the connection.
        ServeMsg::Result(_) | ServeMsg::Stats(_) | ServeMsg::ShutdownAck { .. } => {
            let _ = writer.send(FrameKind::Error, b"protocol: client sent a service-to-client RPC");
            true
        }
    }
}

/// Per-connection handler: the service's read loop. Body-level decode
/// failures (intact frame boundary) answer with a typed `Error` frame
/// and keep reading — the garbage-then-valid recovery path; framing
/// failures drop the connection, and the service stays up either way.
fn client_loop(shared: &Shared, opts: &ServeOptions, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(opts.poll_ms.max(1))));
    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let writer = SharedWriter::new(stream);
    // Persistent across poll ticks: a frame whose bytes straddle a
    // poll_ms window (large graph, slow client) survives the deadline
    // as buffered partial state instead of desyncing the stream.
    let mut frames = FrameReader::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match read_serve_frame(&mut frames, &mut reader, &Deadline::after_ms(opts.poll_ms.max(1))) {
            Ok(Some(msg)) => {
                if !handle_msg(shared, opts, &writer, msg) {
                    return;
                }
            }
            Ok(None) => {}
            Err(FrameError::TimedOut) => {}
            Err(e @ (FrameError::Codec(_) | FrameError::BadBody(_))) => {
                let _ = writer.send(FrameKind::Error, e.to_string().as_bytes());
            }
            Err(e) => {
                let _ = writer.send(FrameKind::Error, e.to_string().as_bytes());
                return;
            }
        }
    }
}

/// A bound-but-not-yet-serving service: the split lets callers learn
/// the OS-assigned port before the blocking loop starts.
pub struct BoundServer {
    listener: TcpListener,
    addr: SocketAddr,
    opts: ServeOptions,
}

impl BoundServer {
    /// Binds the listener (port 0 allocates).
    pub fn bind(opts: ServeOptions) -> io::Result<BoundServer> {
        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        Ok(BoundServer { listener, addr, opts })
    }

    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Runs the service to completion (a client's `Shutdown` drains
    /// and stops it); returns the final counter snapshot.
    pub fn run(self) -> StatsSnapshot {
        let shared = Arc::new(Shared::new());
        let opts = Arc::new(self.opts);
        let workers: Vec<_> = (0..opts.workers.max(1))
            .map(|_| {
                let sh = Arc::clone(&shared);
                let o = Arc::clone(&opts);
                thread::spawn(move || worker_loop(sh, o))
            })
            .collect();
        let _ = self.listener.set_nonblocking(true);
        let mut handlers = Vec::new();
        while !shared.stop.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    // Reap finished handler threads on every accept so
                    // the vec (and peak thread count) tracks *live*
                    // connections, not lifetime connections.
                    handlers.retain(|h: &thread::JoinHandle<()>| !h.is_finished());
                    if handlers.len() >= opts.max_conns.max(1) {
                        // At the connection cap: refuse loudly, then
                        // close (dropping the stream closes it).
                        let w = SharedWriter::new(stream);
                        let _ = w.send(FrameKind::Error, b"connection limit reached");
                        continue;
                    }
                    let sh = Arc::clone(&shared);
                    let o = Arc::clone(&opts);
                    handlers.push(thread::spawn(move || client_loop(&sh, &o, stream)));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(2));
                }
                Err(_) => thread::sleep(Duration::from_millis(2)),
            }
        }
        for w in workers {
            let _ = w.join();
        }
        for h in handlers {
            let _ = h.join();
        }
        shared.snapshot(opts.workers.max(1) as u32)
    }

    /// Runs the service on its own thread; the handle joins for the
    /// final snapshot.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr;
        ServerHandle { addr, join: thread::spawn(move || self.run()) }
    }
}

/// A running service spawned by [`BoundServer::spawn`].
pub struct ServerHandle {
    addr: SocketAddr,
    join: thread::JoinHandle<StatsSnapshot>,
}

impl ServerHandle {
    /// The service's socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the service to drain and stop (a client must have
    /// sent `Shutdown`); a worker panic degrades to default counters
    /// rather than propagating.
    pub fn join(self) -> StatsSnapshot {
        self.join.join().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_cover_the_mass() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.summary(), LatencySummary::default());
        for us in [3u64, 3, 3, 3, 3, 3, 3, 3, 3, 1000] {
            h.record_us(us);
        }
        let s = h.summary();
        assert_eq!(s.count, 10);
        assert_eq!(s.max_us, 1000);
        // p50 lands in the bit-length-2 bucket (values 2..=3).
        assert_eq!(s.p50_us, 3);
        // p99 needs all 10 samples: the 1000 µs bucket (bit length 10).
        assert_eq!(s.p99_us, 1023);
        assert!(s.p50_us <= s.p99_us && s.p99_us <= 1023);
    }

    #[test]
    fn histogram_zero_and_extremes() {
        let mut h = LatencyHistogram::new();
        h.record_us(0);
        h.record_us(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.summary().max_us, u64::MAX);
        // Bit length 0 (the zero) and bit length 64 (u64::MAX) are the
        // extreme buckets; both must carry quantile mass, so p50 is
        // the zero bucket and p99 the top one — not a silent
        // fall-through to max_us.
        assert_eq!(h.quantile_us(1, 2), 0);
        assert_eq!(h.quantile_us(99, 100), u64::MAX);
    }
}
