//! Satellite: admission control answers *typed*, echoes the job id,
//! and never takes the process down. A bad job fails exactly that
//! job: the same connection keeps submitting, and the pool's counters
//! stay coherent.

use ck_graphgen::basic;
use ck_serve::{BoundServer, JobRequest, ServeClient, ServeError, ServeOptions};

fn job(job_id: u64, n: usize, k: u32, eps: f64) -> JobRequest {
    JobRequest { job_id, graph: basic::cycle(n), k, eps, seed: 11, repetitions: Some(1) }
}

/// `k` outside `3..=33` and ε outside (0,1) both refuse through the
/// session's own `ConfigError`, job id echoed, connection preserved.
#[test]
fn bad_parameters_refuse_typed_with_job_id_echo() {
    let server =
        BoundServer::bind(ServeOptions { workers: 1, poll_ms: 5, ..ServeOptions::default() })
            .unwrap()
            .spawn();
    let mut client = ServeClient::connect(&server.addr().to_string(), 10_000).unwrap();

    let res = client.run_job(&job(41, 9, 99, 0.1)).unwrap();
    assert_eq!(res.job_id, 41);
    assert_eq!(
        res.outcome,
        Err(ServeError::Config(ck_core::tester::ConfigError::KOutOfRange { k: 99 },))
    );

    // ε = 0 fails the repetition schedule (`try_repetitions_for`).
    let res = client.run_job(&job(42, 9, 5, 0.0)).unwrap();
    assert_eq!(res.job_id, 42);
    assert_eq!(
        res.outcome,
        Err(ServeError::Config(ck_core::tester::ConfigError::EpsOutOfRange { eps: 0.0 },))
    );

    // The connection survives both refusals and still runs real work.
    let res = client.run_job(&job(43, 5, 5, 0.1)).unwrap();
    assert_eq!(res.job_id, 43);
    assert!(res.outcome.unwrap().reject);

    client.shutdown().unwrap();
    let snap = server.join();
    assert_eq!((snap.jobs_submitted, snap.jobs_completed, snap.jobs_refused), (3, 1, 2));
}

/// A graph over the configured warm-workspace bound refuses with
/// `GraphTooLarge` carrying both the size and the cap.
#[test]
fn oversized_graphs_refuse_with_graph_too_large() {
    let server = BoundServer::bind(ServeOptions {
        workers: 1,
        poll_ms: 5,
        max_nodes: 16,
        ..ServeOptions::default()
    })
    .unwrap()
    .spawn();
    let mut client = ServeClient::connect(&server.addr().to_string(), 10_000).unwrap();

    let res = client.run_job(&job(7, 64, 5, 0.1)).unwrap();
    assert_eq!(res.job_id, 7);
    assert_eq!(res.outcome, Err(ServeError::GraphTooLarge { n: 64, max: 16 }));

    // At the cap is admitted: the bound is exclusive-over, not under.
    let res = client.run_job(&job(8, 16, 5, 0.1)).unwrap();
    assert!(res.outcome.is_ok());

    client.shutdown().unwrap();
    server.join();
}

/// An exhausted in-flight budget sheds load with a typed
/// `Overloaded` backpressure frame instead of queueing unboundedly.
#[test]
fn exhausted_inflight_budget_refuses_with_overloaded() {
    let server = BoundServer::bind(ServeOptions {
        workers: 1,
        poll_ms: 5,
        inflight_budget: 0,
        ..ServeOptions::default()
    })
    .unwrap()
    .spawn();
    let mut client = ServeClient::connect(&server.addr().to_string(), 10_000).unwrap();

    let res = client.run_job(&job(9, 9, 5, 0.1)).unwrap();
    assert_eq!(res.job_id, 9);
    assert_eq!(res.outcome, Err(ServeError::Overloaded { in_flight: 0, budget: 0 }));

    client.shutdown().unwrap();
    let snap = server.join();
    assert_eq!((snap.jobs_submitted, snap.jobs_refused), (1, 1));
}

/// Connections over `max_conns` are refused with an `Error` frame and
/// closed; the connected client is untouched. (The acceptor reaps
/// finished handler threads, so the cap counts *live* connections.)
#[test]
fn connection_cap_refuses_excess_clients_loudly() {
    use ck_congest::net::frame::{read_frame, Deadline, FrameKind};

    let server = BoundServer::bind(ServeOptions {
        workers: 1,
        poll_ms: 5,
        max_conns: 1,
        ..ServeOptions::default()
    })
    .unwrap()
    .spawn();
    let addr = server.addr().to_string();
    let mut first = ServeClient::connect(&addr, 10_000).unwrap();

    // The second concurrent connection is over the cap: one Error
    // frame, then EOF.
    let mut second = std::net::TcpStream::connect(&addr).unwrap();
    let frame = read_frame(&mut second, &Deadline::after_ms(10_000)).unwrap();
    assert_eq!(frame.kind, FrameKind::Error);
    assert_eq!(frame.body, b"connection limit reached");

    // The admitted client never notices.
    let res = first.run_job(&job(11, 5, 5, 0.1)).unwrap();
    assert_eq!(res.job_id, 11);
    assert!(res.outcome.unwrap().reject);
    first.shutdown().unwrap();
    server.join();
}
