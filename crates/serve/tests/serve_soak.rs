//! Satellite: the multi-client soak. Four concurrent clients each
//! push sixteen jobs of mixed sizes, parameters, and seeds through a
//! two-worker service; every verdict must be **bit-identical** to a
//! direct sequential `TesterSession` run of the same job, and after
//! the drain the pool owes nothing: no queue, no in-flight, no
//! outstanding slot.

use std::collections::HashMap;

use ck_graphgen::{basic, planted};
use ck_serve::serve::engine_template;
use ck_serve::{BoundServer, JobRequest, ServeClient, ServeOptions};

const CLIENTS: u64 = 4;
const JOBS_PER_CLIENT: u64 = 16;

/// The mixed job deck: sizes 5..=40, k ∈ {4,5,6}, ε ∈ {0.1, 0.15},
/// planted ε-far instances interleaved with cycles and theta graphs.
fn job_for(client: u64, j: u64) -> JobRequest {
    let job_id = client * 1_000 + j;
    let salt = client * 7 + j;
    let k = 4 + (salt % 3) as u32;
    let eps = if salt.is_multiple_of(2) { 0.1 } else { 0.15 };
    let graph = match salt % 4 {
        0 => basic::cycle(5 + (salt % 36) as usize),
        1 => basic::theta(3 + (salt % 4) as usize, 2 + (salt % 3) as usize),
        2 => planted::eps_far_instance(24 + (salt % 16) as usize, k as usize, eps, salt).graph,
        _ => planted::matched_free_instance(20 + (salt % 20) as usize, k as usize),
    };
    JobRequest { job_id, graph, k, eps, seed: 11 + salt, repetitions: Some(1 + (salt % 2) as u32) }
}

/// Direct sequential oracle: the exact engine configuration the
/// service's pool runs.
fn oracle(job: &JobRequest) -> ck_core::tester::TesterRun {
    ck_core::session::TesterSession::from_config(job.tester_config(), engine_template())
        .unwrap()
        .test(&job.graph)
        .unwrap()
}

#[test]
fn four_clients_sixteen_jobs_each_bit_identical_and_fully_drained() {
    let server = BoundServer::bind(ServeOptions {
        workers: 2,
        poll_ms: 5,
        inflight_budget: (CLIENTS * JOBS_PER_CLIENT) as u32,
        ..ServeOptions::default()
    })
    .unwrap()
    .spawn();
    let addr = server.addr().to_string();

    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(&addr, 30_000).unwrap();
                for j in 0..JOBS_PER_CLIENT {
                    client.submit(&job_for(c, j)).unwrap();
                }
                // Results stream back in completion order; collect and
                // key by echoed job id.
                let mut got = HashMap::new();
                for _ in 0..JOBS_PER_CLIENT {
                    let res = client.recv_result().unwrap();
                    got.insert(res.job_id, res.outcome.unwrap());
                }
                got
            })
        })
        .collect();
    let per_client: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let mut rejects = 0u32;
    for (c, got) in per_client.iter().enumerate() {
        assert_eq!(got.len() as u64, JOBS_PER_CLIENT);
        for j in 0..JOBS_PER_CLIENT {
            let job = job_for(c as u64, j);
            let want = oracle(&job);
            let verdict = &got[&job.job_id];
            assert_eq!(verdict.reject, want.reject, "job {}", job.job_id);
            assert_eq!(verdict.verdicts, want.outcome.verdicts, "job {}", job.job_id);
            rejects += u32::from(verdict.reject);
        }
    }
    // The deck is mixed by construction: both verdicts must occur.
    assert!(rejects > 0, "no job rejected — the deck lost its ε-far half");
    assert!(u64::from(rejects) < CLIENTS * JOBS_PER_CLIENT, "no job accepted");

    let mut closer = ServeClient::connect(&addr, 30_000).unwrap();
    let completed = closer.shutdown().unwrap();
    assert_eq!(completed, CLIENTS * JOBS_PER_CLIENT);

    let snap = server.join();
    assert_eq!(snap.jobs_submitted, CLIENTS * JOBS_PER_CLIENT);
    assert_eq!(snap.jobs_completed, CLIENTS * JOBS_PER_CLIENT);
    assert_eq!(snap.jobs_refused, 0);
    assert_eq!((snap.in_flight, snap.queue_depth, snap.pool_outstanding), (0, 0, 0));
    assert_eq!(snap.latency.count, CLIENTS * JOBS_PER_CLIENT);
    assert!(snap.latency.p50_us <= snap.latency.p99_us);
    assert!(snap.slot_takes > 0, "warm sessions actually cycled slots");
}

/// A client that vanishes mid-job costs the service nothing: the
/// worker finishes, the dead reply socket is shrugged off, the session
/// returns to the pool, and the next client gets correct verdicts.
#[test]
fn client_disconnect_mid_job_leaves_the_service_healthy() {
    let server =
        BoundServer::bind(ServeOptions { workers: 1, poll_ms: 5, ..ServeOptions::default() })
            .unwrap()
            .spawn();
    let addr = server.addr().to_string();

    // A job big enough to still be running when the client dies.
    let doomed = JobRequest {
        job_id: 500,
        graph: planted::eps_far_instance(600, 5, 0.1, 3).graph,
        k: 5,
        eps: 0.1,
        seed: 11,
        repetitions: Some(4),
    };
    {
        let client = ServeClient::connect(&addr, 30_000).unwrap();
        client.submit(&doomed).unwrap();
        // Dropped here: the connection closes with the job in flight.
    }

    // The orphan drains on its own; the pool settles back to zero.
    let mut probe = ServeClient::connect(&addr, 30_000).unwrap();
    loop {
        let s = probe.stats().unwrap();
        if s.jobs_completed + s.jobs_refused >= 1 && s.in_flight == 0 {
            assert_eq!(s.pool_outstanding, 0);
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    // And the service still answers the living bit-identically.
    let next = job_probe();
    let res = probe.run_job(&next).unwrap();
    let verdict = res.outcome.unwrap();
    let want = oracle(&next);
    assert_eq!(verdict.reject, want.reject);
    assert_eq!(verdict.verdicts, want.outcome.verdicts);

    probe.shutdown().unwrap();
    let snap = server.join();
    assert_eq!(snap.jobs_submitted, 2);
    assert_eq!((snap.in_flight, snap.queue_depth, snap.pool_outstanding), (0, 0, 0));
}

fn job_probe() -> JobRequest {
    JobRequest {
        job_id: 501,
        graph: basic::cycle(9),
        k: 5,
        eps: 0.1,
        seed: 13,
        repetitions: Some(2),
    }
}
