//! Satellite: RPC-frame robustness through the *live service's* read
//! loop, in the `net_truncation.rs` idiom. Every byte prefix of every
//! `ServeMsg` body must come back as a typed `Error` frame — never a
//! panic, never a killed service — and because a truncated body leaves
//! the frame boundary intact, the very same connection must still
//! carry a valid job afterwards (the garbage-then-valid recovery
//! contract). Frame-layer garbage (a bad kind byte) is different: the
//! stream is unparseable, so the service drops that connection — and
//! only that connection.

use ck_graphgen::basic;
use ck_serve::rpc::encode_serve_body;
use ck_serve::{
    BoundServer, ClientError, JobRequest, JobResult, LatencySummary, ServeClient, ServeError,
    ServeMsg, ServeOptions, StatsSnapshot,
};

use proptest::prelude::*;

fn opts() -> ServeOptions {
    ServeOptions { workers: 1, poll_ms: 5, ..ServeOptions::default() }
}

fn job(job_id: u64, n: usize) -> JobRequest {
    JobRequest { job_id, graph: basic::cycle(n), k: 5, eps: 0.1, seed: 11, repetitions: Some(1) }
}

/// Every RPC shape a client or server can legally emit, for prefix
/// cutting.
fn sample_msgs() -> Vec<ServeMsg> {
    vec![
        ServeMsg::Submit(job(7, 9)),
        ServeMsg::Result(JobResult {
            job_id: 8,
            outcome: Err(ServeError::Overloaded { in_flight: 3, budget: 3 }),
        }),
        ServeMsg::StatsRequest,
        ServeMsg::Stats(StatsSnapshot {
            workers: 2,
            jobs_completed: 5,
            latency: LatencySummary { count: 5, p50_us: 100, p99_us: 900, max_us: 901 },
            ..StatsSnapshot::default()
        }),
        ServeMsg::Shutdown,
        ServeMsg::ShutdownAck { jobs_completed: 42 },
    ]
}

/// Truncated bodies of every RPC — including `Shutdown`, whose
/// *complete* body would stop the server, but whose every strict
/// prefix must not — answer typed, and the link stays usable.
#[test]
fn every_rpc_body_prefix_fails_typed_and_link_recovers() {
    let server = BoundServer::bind(opts()).unwrap().spawn();
    let addr = server.addr().to_string();
    let mut client = ServeClient::connect(&addr, 10_000).unwrap();

    let mut cuts_tried = 0usize;
    for msg in sample_msgs() {
        let body = encode_serve_body(&msg).unwrap();
        for cut in 0..body.len() {
            client.send_raw_body(&body[..cut]).unwrap();
            match client.recv() {
                Err(ClientError::Remote(text)) => {
                    assert!(!text.is_empty(), "error frame carries the reason");
                }
                other => panic!("cut {cut} of {msg:?}: expected a Remote error, got {other:?}"),
            }
            cuts_tried += 1;
        }
    }
    assert!(cuts_tried > 50, "the sweep must actually cover the grammar ({cuts_tried} cuts)");

    // The same connection, after all that garbage, still runs a job.
    let res = client.run_job(&job(99, 5)).unwrap();
    assert_eq!(res.job_id, 99);
    assert!(res.outcome.unwrap().reject, "C5 under k=5 rejects");

    assert_eq!(client.shutdown().unwrap(), 1);
    let snap = server.join();
    assert_eq!(snap.jobs_completed, 1);
    assert_eq!((snap.in_flight, snap.queue_depth, snap.pool_outstanding), (0, 0, 0));
}

/// A submit whose bytes straddle many `poll_ms` windows — the slow-
/// writer case loopback tests never hit by accident. The service's
/// per-connection `FrameReader` must keep the half-arrived frame
/// buffered across its read deadlines; discarding the consumed bytes
/// would desync the stream and misparse mid-frame bytes as a new
/// header.
#[test]
fn submit_dribbled_across_poll_windows_still_completes() {
    use ck_congest::net::frame::{read_frame, Deadline, FrameKind};
    use ck_serve::rpc::decode_serve_body;
    use std::io::Write;

    let server = BoundServer::bind(opts()).unwrap().spawn(); // poll_ms = 5
    let addr = server.addr().to_string();
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    stream.set_nodelay(true).unwrap();

    let body = encode_serve_body(&ServeMsg::Submit(job(21, 9))).unwrap();
    let mut wire = vec![FrameKind::Serve as u8];
    wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
    wire.extend_from_slice(&body);

    // A few bytes per write, sleeping several poll windows between
    // them, so both the header and the body cross read deadlines.
    for chunk in wire.chunks(5) {
        stream.write_all(chunk).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(15));
    }

    // The service must reassemble it as one Submit and answer it.
    let mut reader = stream.try_clone().unwrap();
    let frame = read_frame(&mut reader, &Deadline::after_ms(10_000)).unwrap();
    assert_eq!(frame.kind, FrameKind::Serve);
    match decode_serve_body(&frame.body).unwrap() {
        ServeMsg::Result(res) => {
            assert_eq!(res.job_id, 21);
            assert!(!res.outcome.unwrap().reject, "C9 is C5-free");
        }
        other => panic!("expected a Result, got {other:?}"),
    }
    drop(reader);
    drop(stream);

    let mut client = ServeClient::connect(&addr, 10_000).unwrap();
    assert_eq!(client.shutdown().unwrap(), 1);
    let snap = server.join();
    assert_eq!(snap.jobs_completed, 1);
}

/// Frame-layer garbage (an unknown kind byte) makes the stream
/// unparseable: the service drops that connection but keeps serving
/// everyone else.
#[test]
fn raw_garbage_drops_only_the_offending_connection() {
    use std::io::{Read, Write};

    let server = BoundServer::bind(opts()).unwrap().spawn();
    let addr = server.addr().to_string();

    let mut vandal = std::net::TcpStream::connect(&addr).unwrap();
    vandal.write_all(&[0xEE, 0xFF, 0xFF, 0xFF, 0xFF, 0x00, 0x01, 0x02]).unwrap();
    vandal.flush().unwrap();
    // The service answers best-effort and closes: the read side must
    // reach EOF instead of hanging.
    vandal.set_read_timeout(Some(std::time::Duration::from_secs(10))).unwrap();
    let mut drained = Vec::new();
    vandal.read_to_end(&mut drained).unwrap_or(0);

    // A fresh, well-behaved client is entirely unaffected.
    let mut client = ServeClient::connect(&addr, 10_000).unwrap();
    let res = client.run_job(&job(1, 9)).unwrap();
    assert_eq!(res.job_id, 1);
    assert!(!res.outcome.unwrap().reject, "C9 is C5-free");
    client.shutdown().unwrap();
    server.join();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Random cuts of a submit body, random junk padding after the
    /// cut: still one typed error per frame, still a live link after.
    #[test]
    fn random_cut_plus_junk_recovers(cut_pct in 0usize..100, junk in proptest::collection::vec(0u8..255, 0..16usize)) {
        let server = BoundServer::bind(opts()).unwrap().spawn();
        let addr = server.addr().to_string();
        let mut client = ServeClient::connect(&addr, 10_000).unwrap();

        let body = encode_serve_body(&ServeMsg::Submit(job(3, 7))).unwrap();
        // Keep the tag byte: every mangled body is then a Submit
        // attempt, never an accidental Shutdown.
        let cut = (body.len() * cut_pct / 100).clamp(1, body.len() - 1);
        let mut mangled = body[..cut].to_vec();
        mangled.extend_from_slice(&junk);
        client.send_raw_body(&mangled).unwrap();
        // Whatever the mangled body decodes to, the reply is typed:
        // either an Error frame (decode failed) or, if the junk happens
        // to complete a well-formed Submit, a Result frame.
        match client.recv() {
            Err(ClientError::Remote(_)) | Ok(ServeMsg::Result(_)) => {}
            other => panic!("mangled body: unexpected {other:?}"),
        }

        let res = client.run_job(&job(4, 5)).unwrap();
        prop_assert_eq!(res.job_id, 4);
        client.shutdown().unwrap();
        server.join();
    }
}
