//! Behrend-style hard instances: cycles spread by arithmetic structure.
//!
//! The paper's motivation: the sampling techniques behind the C3/C4
//! testers provably fail for k ≥ 5 on Behrend-graph-derived instances,
//! whose many Ck copies give no local density signal. This example builds
//! layered instances with Behrend (3-AP-free) strides, shows that
//! Algorithm 1's per-edge check is deterministic-exact on them, and
//! contrasts it with a budget-1 random-forwarding heuristic (the natural
//! "sampling" generalization).
//!
//! ```text
//! cargo run --release --example behrend_hard_instances
//! ```

use ck_baselines::naive::{naive_detect_through_edge, DropPolicy};
use ck_congest::engine::EngineConfig;
use ck_congest::graph::Edge;
use ck_core::prune::PrunerKind;
use ck_core::single::detect_ck_through_edge;
use ck_core::tester::test_ck_freeness;
use ck_graphgen::behrend::{behrend_ap_free_set, behrend_ck_instance};

fn main() {
    let s = behrend_ap_free_set(200);
    println!("Behrend 3-AP-free subset of [0,200): {} elements: {s:?}\n", s.len());

    for &(k, width) in &[(5usize, 48usize), (6, 40), (7, 36)] {
        let inst = behrend_ck_instance(k, width);
        let g = &inst.graph;
        println!(
            "k={k}, width={width}: n={}, m={}, planted edge-disjoint copies={} (packing/m = 1/{k})",
            g.n(),
            g.m(),
            inst.planted.len()
        );

        // Per-edge determinism: every closing edge of a planted copy is
        // caught by Algorithm 1, no randomness involved.
        let mut exact = 0;
        let probes = inst.planted.len().min(10);
        for copy in inst.planted.iter().take(probes) {
            let e = Edge::new(copy[k - 1], copy[0]);
            let run = detect_ck_through_edge(
                g,
                k,
                e,
                PrunerKind::Representative,
                &EngineConfig::default(),
            )
            .unwrap();
            if run.reject {
                exact += 1;
            }
        }
        println!("  Algorithm 1 single-edge on {probes} planted edges: {exact}/{probes} rejected");
        assert_eq!(exact, probes, "Phase 2 is exact per edge (Lemma 2)");

        // Budget-1 random forwarding on the same edges.
        let mut sampled = 0;
        for (i, copy) in inst.planted.iter().take(probes).enumerate() {
            let e = Edge::new(copy[k - 1], copy[0]);
            if naive_detect_through_edge(
                g,
                k,
                e,
                DropPolicy::SampleRandom { cap: 1, seed: i as u64 },
                &EngineConfig::default(),
            )
            .unwrap()
            .reject
            {
                sampled += 1;
            }
        }
        println!("  budget-1 random forwarding on the same edges: {sampled}/{probes} rejected");

        // Full tester: the instance is ε-far for ε < 1/k, so detection
        // must clear 2/3.
        let eps = 0.04;
        let hits = (0..6u64).filter(|&seed| test_ck_freeness(g, k, eps, seed).reject).count();
        println!("  full tester (ε={eps}): {hits}/6 runs rejected\n");
        assert!(hits * 3 >= 12);
    }
}
