//! Congestion audit: why Algorithm 1 prunes.
//!
//! Sweeps spindle graphs of growing fan-in width p and compares the
//! unpruned append-and-forward baseline against Algorithm 1 on the
//! quantities the CONGEST model cares about: sequences per message,
//! per-link bits, and normalized rounds (wall rounds × ⌈link-bits / B⌉
//! with B = 4⌈log₂ n⌉).
//!
//! ```text
//! cargo run --release --example congestion_audit
//! ```

use ck_baselines::naive::{naive_detect_through_edge, DropPolicy};
use ck_congest::engine::EngineConfig;
use ck_congest::graph::Edge;
use ck_congest::message::WireParams;
use ck_core::prune::{lemma3_bound, PrunerKind};
use ck_core::single::detect_ck_through_edge;
use ck_graphgen::basic::spindle;

fn main() {
    let k = 6;
    let bound = (2..=k / 2).map(|t| lemma3_bound(k, t)).max().unwrap();
    println!("k = {k}; Lemma 3 worst-round bound = {bound} sequences/message\n");
    println!("    p | naive seqs | naive link bits | naive norm rounds | pruned seqs | pruned link bits | pruned norm rounds");
    println!("------+------------+-----------------+-------------------+-------------+------------------+-------------------");
    for p in [4usize, 8, 16, 32, 64, 128] {
        let g = spindle(p, 2);
        let e = Edge::new(0, 1);
        let wp = WireParams::for_graph(&g);
        let b = wp.congest_bandwidth(4);

        let naive =
            naive_detect_through_edge(&g, k, e, DropPolicy::KeepAll, &EngineConfig::default())
                .unwrap();
        let pruned =
            detect_ck_through_edge(&g, k, e, PrunerKind::Representative, &EngineConfig::default())
                .unwrap();
        assert!(naive.reject && pruned.reject);
        assert!((pruned.max_sent_seqs() as u128) <= bound);

        println!(
            "{p:5} | {:10} | {:15} | {:17} | {:11} | {:16} | {:18}",
            naive.max_offered,
            naive.outcome.report.max_link_bits(),
            naive.outcome.report.normalized_rounds(b),
            pruned.max_sent_seqs(),
            pruned.outcome.report.max_link_bits(),
            pruned.outcome.report.normalized_rounds(b),
        );
    }
    println!("\nNaive grows linearly with p; Algorithm 1 stays at the Lemma 3 constant.");
}
