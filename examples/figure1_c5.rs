//! Figure 1, replayed: detecting a C5 through {u, v}.
//!
//! Reconstructs the paper's Figure-1 instance (hubs u, v; middle nodes
//! x, y adjacent to both; apex z) and walks through why forwarding
//! decisions matter: if x and y each forward only their u-side sequence,
//! z never assembles the cycle — Algorithm 1's pruning provably keeps
//! both sides.
//!
//! ```text
//! cargo run --release --example figure1_c5
//! ```

use ck_baselines::naive::{naive_detect_through_edge, DropPolicy};
use ck_congest::engine::EngineConfig;
use ck_congest::graph::Edge;
use ck_core::prune::{build_send_set, PrunerKind};
use ck_core::seq::IdSeq;
use ck_core::single::detect_ck_through_edge;
use ck_graphgen::basic::figure1;

fn main() {
    let g = figure1();
    let e = Edge::new(0, 1);
    println!("Figure 1 graph: u=0, v=1, x=2, y=3, z=4; testing C5 through {{u,v}}\n");

    // Round 1: u and v seed; x receives both IDs.
    println!("round 1: u, v broadcast their IDs; x and y receive both (u) and (v)");

    // Round 2 at x (= node id 2): the pruning decision.
    let received = vec![IdSeq::single(0), IdSeq::single(1)];
    let sent = build_send_set(PrunerKind::Representative, &received, 2, 5, 2);
    println!("round 2 at x: received {{(u), (v)}} → forwards {:?}", seqs(&sent));
    assert_eq!(sent.len(), 2, "the pruner must keep BOTH hub sequences");

    // Full protocol: z decides.
    let run =
        detect_ck_through_edge(&g, 5, e, PrunerKind::Representative, &EngineConfig::default())
            .unwrap();
    let z = &run.outcome.verdicts[4];
    println!(
        "round 2→3: z receives the forwarded pairs and outputs {}",
        if z.reject { "REJECT" } else { "accept" }
    );
    let w = z.witness.as_ref().expect("z detects");
    println!("  witness: L1={:?}, L2={:?} → cycle {:?}\n", w.l1, w.l2, w.cycle_ids());

    // The pitfall, made concrete: truncate to one sequence per node.
    let capped = naive_detect_through_edge(
        &g,
        5,
        e,
        DropPolicy::TruncateDeterministic { cap: 1 },
        &EngineConfig::default(),
    )
    .unwrap();
    println!(
        "same run with arbitrary cap-1 truncation instead of pruning: {}",
        if capped.reject { "REJECT" } else { "accept (cycle LOST — the Figure 1 pitfall)" }
    );
    assert!(!capped.reject);
}

fn seqs(s: &[IdSeq]) -> Vec<Vec<u64>> {
    s.iter().map(|x| x.as_slice().to_vec()).collect()
}
