//! Girth probing with the paper's machinery.
//!
//! The single-edge detector is exact per (edge, k) — so sweeping k = 3,
//! 4, … yields a distributed girth probe. This example sweeps a gallery
//! of graphs with known girths and cross-checks the BFS oracle, then
//! runs the randomized full-tester profile a real CONGEST deployment
//! would use.
//!
//! ```text
//! cargo run --release --example girth_probe
//! ```

use ck_core::girth::{exact_freeness_profile, girth_via_detectors, sampled_freeness_profile};
use ck_graphgen::basic::{cycle_cactus, grid, petersen};
use ck_graphgen::families::{circulant, mobius_kantor, pappus};

fn main() {
    let gallery: Vec<(&str, ck_congest::graph::Graph)> = vec![
        ("Petersen", petersen()),
        ("Möbius–Kantor", mobius_kantor()),
        ("Pappus", pappus()),
        ("grid(4,5)", grid(4, 5)),
        ("C11(1,2) circulant", circulant(11, &[1, 2])),
        ("C5-cactus", cycle_cactus(4, 5)),
    ];
    println!("graph              | girth (BFS) | girth (detector sweep) | detected lengths ≤ 8");
    println!("-------------------+-------------+------------------------+---------------------");
    for (name, g) in &gallery {
        let bfs = g.girth();
        let probe = girth_via_detectors(g, 8);
        let profile = exact_freeness_profile(g, 8);
        let lengths: Vec<usize> =
            profile.detected.iter().enumerate().filter(|(_, &d)| d).map(|(i, _)| i + 3).collect();
        println!(
            "{name:18} | {:11} | {:22} | {lengths:?}",
            bfs.map_or("∞ (forest)".into(), |x| x.to_string()),
            probe.map_or("> 8".into(), |x| x.to_string()),
        );
        assert_eq!(probe, bfs.filter(|&x| x <= 8).map(|x| x as usize));
    }

    println!("\nRandomized profile on the C5-cactus (what a CONGEST network measures in O(k·1/ε) rounds):");
    let g = cycle_cactus(4, 5);
    let profile = sampled_freeness_profile(&g, 8, 0.1, 7);
    for (i, d) in profile.detected.iter().enumerate() {
        println!("  C{}: {}", i + 3, if *d { "detected" } else { "not detected" });
    }
    assert_eq!(profile.shortest_detected(), Some(5));
}
