//! Planted-cycle hunt: the paper's headline guarantee on ε-far inputs.
//!
//! Builds instances that are *certifiably* ε-far from Ck-free (more than
//! εm vertex-disjoint planted copies), runs the full tester across many
//! seeds, and reports the empirical detection rate against the 2/3 bound
//! of Theorem 1 — then shows one recovered witness cycle and checks it
//! against the sequential oracle.
//!
//! ```text
//! cargo run --release --example planted_cycle_hunt
//! ```

use ck_core::session::TesterSession;
use ck_graphgen::farness::{certify_eps_far, is_valid_ck};
use ck_graphgen::planted::eps_far_instance;

fn main() {
    let eps = 0.08;
    let trials = 20u64;
    println!("k | n   | m   | certified packing | reject rate | bound");
    println!("--+-----+-----+-------------------+-------------+------");
    for k in 3..=7 {
        let inst = eps_far_instance(70, k, eps, 0);
        let cert = certify_eps_far(&inst.graph, k, eps);
        assert!(cert.certified);
        let mut rejects = 0;
        let mut sample_witness = None;
        // The seed sweep runs as one sharded session batch: per-shard
        // engine workspaces and tester scratch are recycled across
        // trials instead of rebuilt per seed.
        let session = TesterSession::builder(k, eps).build().expect("valid parameters");
        let jobs: Vec<_> = (0..trials).map(|seed| session.job(&inst.graph, seed)).collect();
        let runs = session.test_batch(&jobs, None).expect("batch run");
        for run in &runs {
            if run.reject {
                rejects += 1;
                if sample_witness.is_none() {
                    sample_witness = run.rejections().first().map(|r| r.witness.cycle_ids());
                }
            }
        }
        let rate = rejects as f64 / trials as f64;
        println!(
            "{k} | {:3} | {:3} | {:17} | {rate:10.2} | ≥ 0.67",
            inst.graph.n(),
            inst.graph.m(),
            cert.packing,
        );
        if let Some(ids) = sample_witness {
            let idx: Vec<_> = ids.iter().map(|&id| inst.graph.index_of(id).unwrap()).collect();
            assert!(is_valid_ck(&inst.graph, k, &idx), "witness must be a real C{k}");
            println!("    sample witness C{k}: {ids:?} (validated against oracle)");
        }
        assert!(rate >= 2.0 / 3.0, "detection below the Theorem 1 bound");
    }
}
