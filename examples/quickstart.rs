//! Quickstart: test a network for C5-freeness through the `Session`
//! API — one builder, parameters validated up front, arenas and
//! per-node scratch recycled across runs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ck_core::session::TesterSession;
use ck_graphgen::basic::cycle;
use ck_graphgen::planted::matched_free_instance;

fn main() {
    let k = 5;
    let eps = 0.1;

    // One session, many graphs: (k, ε) are checked here, not deep
    // inside a run.
    let mut session = TesterSession::builder(k, eps).seed(42).build().expect("valid parameters");

    // A C5-free network (blocks of C6 chained together): the tester is
    // 1-sided, so this must be accepted no matter the seed.
    let free = matched_free_instance(60, k);
    let run = session.test(&free).expect("default engine config cannot fail");
    println!(
        "C6-cactus (n={}, m={}): {}  [{} repetitions, {} rounds, {} messages]",
        free.n(),
        free.m(),
        if run.reject { "REJECT" } else { "accept" },
        run.repetitions,
        run.outcome.report.rounds,
        run.outcome.report.total_messages(),
    );
    assert!(!run.reject, "1-sided error: a C5-free graph is never rejected");

    // A single C5: every edge lies on it, so whichever edge wins the
    // Phase-1 rank draw, Phase 2 finds the cycle.
    let c5 = cycle(k);
    let run = session.test(&c5).expect("default engine config cannot fail");
    println!(
        "C5 itself   (n={}, m={}): {}",
        c5.n(),
        c5.m(),
        if run.reject { "REJECT" } else { "accept" },
    );
    for r in run.rejections() {
        println!(
            "  node rejected in repetition {} via edge ({}, {}): cycle {:?}",
            r.repetition,
            r.tag.lo,
            r.tag.hi,
            r.witness.cycle_ids()
        );
    }
    assert!(run.reject);
}
