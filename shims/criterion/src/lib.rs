//! Offline stand-in for `criterion`.
//!
//! Provides the builder/macro surface the workspace's benches use —
//! `Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `criterion_group!`, `criterion_main!` — measuring with
//! plain `std::time::Instant` instead of criterion's statistical engine.
//!
//! Methodology: each benchmark is warmed up for [`WARMUP`], then timed
//! in whole-iteration batches until [`MEASURE`] of wall clock or
//! [`MAX_ITERS`] iterations have elapsed; the reported figure is the
//! mean. That is deliberately simpler than criterion (no outlier
//! rejection, no regression analysis) but stable enough to compare
//! engine variants on one machine, and it keeps `cargo bench` usable
//! with no external dependencies.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Warm-up budget per benchmark.
pub const WARMUP: Duration = Duration::from_millis(300);
/// Measurement budget per benchmark.
pub const MEASURE: Duration = Duration::from_secs(1);
/// Iteration cap per benchmark (bounds total runtime of slow benches).
pub const MAX_ITERS: u64 = 10_000;

/// Re-export matching `criterion::black_box` (same guarantees).
pub use std::hint::black_box;

/// Top-level bench context; one per `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, f);
        self
    }

    /// Opens a named group; group benchmarks render as `group/id`.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<S: Display, F>(&mut self, id: S, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    pub fn bench_with_input<S: Display, I: ?Sized, F>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Accepted for API parity; this harness sizes measurement by wall
    /// clock ([`MEASURE`]/[`MAX_ITERS`]) rather than sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ends the group (kept for API parity; nothing to flush here).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    pub fn new<N: Display, P: Display>(name: N, parameter: P) -> Self {
        BenchmarkId { repr: format!("{name}/{parameter}") }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { repr: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.repr)
    }
}

/// Passed to the benchmark closure; `iter` does the timing.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up: fills caches and triggers lazy init outside the
        // measured window.
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < MAX_ITERS {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= MEASURE {
                break;
            }
        }
        self.total = start.elapsed();
        self.iters = iters;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut b = Bencher { total: Duration::ZERO, iters: 0 };
    f(&mut b);
    if b.iters == 0 {
        println!("{name:<60} (no iterations recorded)");
        return;
    }
    let per_iter = b.total.as_nanos() / u128::from(b.iters);
    println!("{name:<60} time: {} ({} iterations)", format_ns(per_iter), b.iters);
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Mirrors `criterion_group!`: bundles bench functions into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Mirrors `criterion_main!`: emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher { total: Duration::ZERO, iters: 0 };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert!(b.iters > 0);
        assert!(b.total > Duration::ZERO);
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("sweep", 42).to_string(), "sweep/42");
        assert_eq!(BenchmarkId::from_parameter("p0.05").to_string(), "p0.05");
    }

    #[test]
    fn groups_compose_names() {
        let mut c = Criterion::default();
        // Smoke-run a trivial benchmark through the whole pipeline.
        let mut g = c.benchmark_group("shim");
        g.bench_with_input(BenchmarkId::from_parameter(1u32), &1u32, |b, &v| {
            b.iter(|| v + 1);
        });
        g.finish();
    }
}
