//! Offline stand-in for `proptest`.
//!
//! Provides the same surface the workspace's property tests are written
//! against — the `proptest!` macro, `Strategy` with `prop_map` /
//! `prop_flat_map`, integer-range and tuple strategies, `any::<T>()`,
//! `Just`, `proptest::collection::vec`, and the `prop_assert*` macros —
//! backed by a deterministic RNG instead of crates.io's engine.
//!
//! Deliberate simplifications:
//!
//! * no shrinking — a failing case reports its inputs (via `Debug` in
//!   the assertion message) and the case number, which replays exactly
//!   because generation is seeded by `(test name, case index)`;
//! * strategies are sampled uniformly; there is no bias toward
//!   boundary values;
//! * `prop_assume!` rejects the case and moves on, with a cap on the
//!   rejection rate so vacuous tests fail loudly.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Failure modes of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assumption failed; the case is skipped, not failed.
    Reject,
    /// A `prop_assert*` failed with this message.
    Fail(String),
}

/// Runner configuration (field subset of the real `ProptestConfig`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Maximum `prop_assume!` rejections tolerated before the property
    /// fails as vacuous.
    pub max_local_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_local_rejects: 65_536 }
    }
}

/// Deterministic per-case generator handed to strategies.
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Derives the RNG for `(property name, case index)` — stable across
    /// runs and platforms, so any reported failing case replays.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { rng: StdRng::seed_from_u64(h ^ (u64::from(case) << 1)) }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.rng.random()
    }

    pub fn below(&mut self, n: u64) -> u64 {
        self.rng.random_range(0..n.max(1))
    }
}

/// A value generator. Mirrors proptest's `Strategy` minus shrinking.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then samples the strategy `f`
    /// builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Constant strategy: always yields a clone of the value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Full-range strategy for `any::<T>()`.
pub struct Any<T>(core::marker::PhantomData<T>);

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (uniform over the value range).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end - self.start) as u64;
                self.start + rng.below(width) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let width = (*self.end() - *self.start()) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                *self.start() + rng.below(width + 1) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec()`]: a fixed length or a range.
    pub trait VecLen {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl VecLen for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl VecLen for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl VecLen for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            *self.start() + rng.below((*self.end() - *self.start() + 1) as u64) as usize
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `len`.
    pub fn vec<S: Strategy, L: VecLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: VecLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test file imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond),
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}) at {}:{}",
                stringify!($a), stringify!($b), a, b, file!(), line!()
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}; {}) at {}:{}",
                stringify!($a), stringify!($b), a, b, format!($($fmt)+), file!(), line!()
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {} (both: {:?}) at {}:{}",
                stringify!($a),
                stringify!($b),
                a,
                file!(),
                line!()
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// The `proptest!` block: expands each property into a `#[test]` that
/// replays `cases` deterministic generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let prop_name = concat!(module_path!(), "::", stringify!($name));
                let mut rejects: u32 = 0;
                let mut case: u32 = 0;
                let mut executed: u32 = 0;
                while executed < cfg.cases {
                    let mut __rng = $crate::TestRng::for_case(prop_name, case);
                    case += 1;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => executed += 1,
                        Err($crate::TestCaseError::Reject) => {
                            rejects += 1;
                            if rejects > cfg.max_local_rejects {
                                panic!("{prop_name}: too many prop_assume! rejections ({rejects})");
                            }
                        }
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("{prop_name}: case #{} failed: {}", case - 1, msg);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(n in 3usize..10, m in 5u64..=9) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((5..=9).contains(&m));
        }

        #[test]
        fn maps_and_tuples_compose(pair in (1u32..5, any::<u64>()).prop_map(|(a, s)| (a * 2, s))) {
            prop_assert!(pair.0 % 2 == 0);
            prop_assert!(pair.0 >= 2 && pair.0 < 10);
        }

        #[test]
        fn flat_map_threads_values((k, v) in (2usize..6).prop_flat_map(|k| (Just(k), 0usize..k))) {
            prop_assert!(v < k, "v={} k={}", v, k);
        }

        #[test]
        fn collection_vec_lengths(xs in crate::collection::vec(0u64..100, 2..5usize)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            prop_assert!(xs.iter().all(|&x| x < 100));
        }

        #[test]
        fn assume_skips_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = (1u64..1000, any::<u64>());
        let a = s.generate(&mut crate::TestRng::for_case("x", 3));
        let b = s.generate(&mut crate::TestRng::for_case("x", 3));
        assert_eq!(a, b);
        let c = s.generate(&mut crate::TestRng::for_case("x", 4));
        assert_ne!(a, c);
    }
}
