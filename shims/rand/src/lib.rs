//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides — with the same paths and method names — exactly the API
//! surface the workspace consumes: [`rngs::StdRng`], [`SeedableRng`],
//! and the [`RngExt`] sampling helpers (`random`, `random_range`,
//! `random_bool`).
//!
//! The generator is xoshiro256++ seeded through splitmix64, which is the
//! standard small-state construction with good statistical behaviour.
//! Everything here is deterministic in the seed; nothing reads OS
//! entropy. Streams are stable across platforms and releases of this
//! workspace — experiment replays depend on that, so treat any change to
//! the generator as a breaking change.

/// RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    /// A deterministic 256-bit-state generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        /// Next raw 64-bit output.
        pub(crate) fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Seeding, mirroring `rand::SeedableRng` for the subset used here.
pub trait SeedableRng: Sized {
    /// Expands a 64-bit seed into the full generator state.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        // xoshiro's all-zero state is degenerate; splitmix64 never yields
        // four consecutive zeros from any seed, so this is safe.
        rngs::StdRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }
}

/// A type samplable uniformly from the generator's raw output.
pub trait Uniform: Sized {
    fn from_u64(raw: u64) -> Self;
}

impl Uniform for u64 {
    fn from_u64(raw: u64) -> Self {
        raw
    }
}

impl Uniform for u32 {
    fn from_u64(raw: u64) -> Self {
        (raw >> 32) as u32
    }
}

impl Uniform for usize {
    fn from_u64(raw: u64) -> Self {
        raw as usize
    }
}

impl Uniform for bool {
    fn from_u64(raw: u64) -> Self {
        raw >> 63 == 1
    }
}

/// A range type usable with [`RngExt::random_range`]: yields its
/// inclusive bounds as `u64`s plus a converter back to the target type.
pub trait SampleRange {
    type Output;
    /// Inclusive (lo, hi) bounds. Panics on an empty range, matching
    /// `rand`'s behaviour.
    fn bounds(&self) -> (u64, u64);
    fn from_u64(v: u64) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn bounds(&self) -> (u64, u64) {
                assert!(self.start < self.end, "cannot sample empty range");
                (self.start as u64, self.end as u64 - 1)
            }
            fn from_u64(v: u64) -> $t { v as $t }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn bounds(&self) -> (u64, u64) {
                assert!(self.start() <= self.end(), "cannot sample empty range");
                (*self.start() as u64, *self.end() as u64)
            }
            fn from_u64(v: u64) -> $t { v as $t }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Sampling helpers, mirroring the `rand` 0.9 method names (`random`,
/// `random_range`, `random_bool`).
pub trait RngExt {
    fn next_raw(&mut self) -> u64;

    /// A uniform sample of `T` over its full value range.
    fn random<T: Uniform>(&mut self) -> T {
        T::from_u64(self.next_raw())
    }

    /// A uniform sample from `range` (debiased by rejection).
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        let (lo, hi) = range.bounds();
        let width = hi - lo + 1; // 0 means the full 2^64 range
        if width == 0 {
            return R::from_u64(self.next_raw());
        }
        // Rejection sampling on the top bits: unbiased and cheap (the
        // expected number of draws is < 2 for any width).
        let zone = u64::MAX - (u64::MAX - width + 1) % width;
        loop {
            let raw = self.next_raw();
            if raw <= zone {
                return R::from_u64(lo + raw % width);
            }
        }
    }

    /// A Bernoulli trial with success probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        if p >= 1.0 {
            return true;
        }
        // Compare 53 uniform bits against p at double precision.
        let unit = (self.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl RngExt for rngs::StdRng {
    fn next_raw(&mut self) -> u64 {
        self.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_hit_all_values_and_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.random_range(3usize..13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = r.random_range(5u64..=5);
            assert_eq!(v, 5);
        }
    }

    #[test]
    fn bool_probability_is_calibrated() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| r.random_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        assert!((0..100).all(|_| r.random_bool(1.0)));
        assert!(!(0..100).any(|_| r.random_bool(0.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(3);
        let _ = r.random_range(5u32..5);
    }
}
