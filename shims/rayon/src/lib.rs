//! Offline stand-in for `rayon`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the fragment of rayon's API the workspace uses — `par_iter_mut` /
//! `par_iter` over slices, `into_par_iter` over integer ranges, and the
//! `map` / `enumerate` / `for_each` / `collect` adapters — implemented
//! with `std::thread::scope` over contiguous chunks.
//!
//! Differences from real rayon, by design:
//!
//! * no global thread pool — threads are spawned per call and joined
//!   before it returns (scoped, so borrowed captures work exactly as
//!   they do with rayon);
//! * small inputs (below [`MIN_PAR_LEN`]) run inline on the caller's
//!   thread, since per-call spawning would dominate;
//! * adapters are executed eagerly at the terminal operation; there is
//!   no lazy iterator fusion beyond the single `map` this workspace
//!   needs.
//!
//! Chunks are contiguous and results are reassembled in input order, so
//! `collect` is order-preserving — the property the round engine's
//! determinism contract relies on.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Inputs shorter than this run inline; scoped-thread spawning costs a
/// few tens of microseconds per call, which only pays off for wide
/// loops. Call sites whose per-element work is heavier than a trivial
/// loop body (e.g. a whole CONGEST node step over SoA slices) can lower
/// the threshold per call with [`ParIterMut::with_min_len`].
pub const MIN_PAR_LEN: usize = 4096;

/// Test override for the worker count (0 = fall back to the
/// `CK_FORCED_WORKERS` environment default, then the core count).
static FORCED_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Forces every parallel call to split across exactly `n` scoped
/// threads regardless of core count or input length (0 restores the
/// default: the `CK_FORCED_WORKERS` environment value if set, else the
/// core count). For tests: lets single-core machines and small inputs
/// exercise the genuinely multi-threaded code paths that callers'
/// unsafe code (e.g. the round engine's shared arenas) must survive.
///
/// Call this only **between** runs, never while a parallel computation
/// is in flight: callers that key external chunk-local state off a
/// captured [`ChunkPlan`] (the round engine pins one plan per run via
/// [`ParIterMut::with_chunk_plan`]) prepare that state from the same
/// forced-worker snapshot, and the engine debug-asserts the snapshot
/// is still current at every round.
pub fn force_workers_for_tests(n: usize) {
    FORCED_WORKERS.store(n, Ordering::Relaxed);
}

/// Process-wide forced-worker default from the `CK_FORCED_WORKERS`
/// environment variable, read once — CI's thread-matrix leg uses this
/// to run whole test binaries at a fixed worker count without touching
/// every test. Invalid or absent values mean "no forcing".
fn env_forced_workers() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("CK_FORCED_WORKERS").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
    })
}

/// The forced worker count in effect: an explicit
/// [`force_workers_for_tests`] wins, then the `CK_FORCED_WORKERS`
/// environment default; 0 means "not forced".
fn effective_forced() -> usize {
    let forced = FORCED_WORKERS.load(Ordering::Relaxed);
    if forced > 0 {
        forced
    } else {
        env_forced_workers()
    }
}

fn cores() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Number of worker threads a wide parallel call will use — the forced
/// override if set, else the core count. Mirrors rayon's
/// `current_num_threads` so callers (e.g. benchmark metadata) can
/// report the parallel executor's width honestly.
pub fn current_num_threads() -> usize {
    let forced = effective_forced();
    if forced > 0 {
        return forced;
    }
    cores()
}

fn worker_count(len: usize) -> usize {
    let forced = effective_forced();
    if forced > 0 {
        return forced.min(len.max(1));
    }
    cores().min(len)
}

/// The contiguous chunk partition a wide element-wise parallel call
/// (`par_iter_mut` and its adapters) uses for a slice of `len` items:
/// `workers` scoped threads, each owning one contiguous chunk of
/// `chunk_len` elements (the last may be shorter), `workers == 1`
/// meaning the call runs inline on the caller's thread.
///
/// This is the **single source of truth** for the shim's element→thread
/// mapping: [`chunk_plan`] exposes it so callers that share mutable
/// state per chunk (the round engine's SoA node-state arena keys its
/// chunk-local scratch off this) partition exactly as the executor
/// does. `index / chunk_len` is the chunk an element runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkPlan {
    /// Slice length the plan was computed for.
    pub len: usize,
    /// Number of contiguous chunks (== scoped threads when > 1).
    pub workers: usize,
    /// Elements per chunk (≥ 1 even for empty slices, so
    /// `index / chunk_len` is always well-defined).
    pub chunk_len: usize,
}

impl ChunkPlan {
    /// Number of nonempty chunks the slice actually splits into.
    pub fn chunks(&self) -> usize {
        self.len.div_ceil(self.chunk_len).max(1)
    }

    /// The chunk (and therefore thread) an element index runs on.
    pub fn chunk_of(&self, index: usize) -> usize {
        index / self.chunk_len
    }
}

/// Pure partition math behind [`chunk_plan`]: injectable inputs so the
/// mapping is unit-testable on any machine.
fn plan_for(len: usize, cores: usize, forced: usize, min_len: usize) -> ChunkPlan {
    let workers = if forced > 0 { forced.min(len.max(1)) } else { cores.min(len) };
    let inline = workers <= 1 || (forced == 0 && len < min_len);
    if inline {
        ChunkPlan { len, workers: 1, chunk_len: len.max(1) }
    } else {
        ChunkPlan { len, workers, chunk_len: len.div_ceil(workers) }
    }
}

/// The partition an element-wise parallel call over `len` items will
/// use under the default [`MIN_PAR_LEN`] inline threshold.
pub fn chunk_plan(len: usize) -> ChunkPlan {
    chunk_plan_with_min_len(len, MIN_PAR_LEN)
}

/// As [`chunk_plan`], under a caller-chosen inline threshold — pair
/// with [`ParIterMut::with_min_len`] on the executing call so the plan
/// and the execution agree.
pub fn chunk_plan_with_min_len(len: usize, min_len: usize) -> ChunkPlan {
    plan_for(len, cores(), effective_forced(), min_len)
}

/// How an element-wise parallel call chooses its partition: recompute
/// from the current worker state under an inline threshold (the
/// default), or use a caller-captured [`ChunkPlan`] verbatim.
#[derive(Clone, Copy)]
enum Split {
    /// Recompute [`chunk_plan_with_min_len`]`(len, min_len)` at call
    /// time from the mutable forced-worker/core state.
    MinLen(usize),
    /// Use this exact plan — partitioning is then a pure function of
    /// the plan, immune to forced-worker changes between calls.
    Pinned(ChunkPlan),
}

impl Split {
    fn plan(self, len: usize) -> ChunkPlan {
        match self {
            Split::MinLen(m) => chunk_plan_with_min_len(len, m),
            Split::Pinned(p) => {
                assert_eq!(p.len, len, "pinned ChunkPlan was computed for a different length");
                p
            }
        }
    }
}

/// Runs `f(start_index, chunk)` over contiguous chunks of `data` on
/// scoped threads, returning per-chunk outputs in input order. The
/// partition is exactly `split.plan(data.len())` — for the default
/// [`Split::MinLen`] that is [`chunk_plan_with_min_len`]`(data.len(),
/// min_len)`, recomputed now; for [`Split::Pinned`] it is the caller's
/// captured plan verbatim. Callers synchronizing external chunk-local
/// state rely on that equality.
fn run_mut_chunks<T: Send, R: Send>(
    data: &mut [T],
    inline: bool,
    split: Split,
    f: impl Fn(usize, &mut [T]) -> R + Sync,
) -> Vec<R> {
    let n = data.len();
    let plan = split.plan(n);
    if inline || plan.workers <= 1 {
        if n == 0 {
            return Vec::new();
        }
        return vec![f(0, data)];
    }
    let chunk = plan.chunk_len;
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = data
            .chunks_mut(chunk)
            .enumerate()
            .map(|(ci, ch)| s.spawn(move || f(ci * chunk, ch)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    })
}

/// True when a borrowing (`&[T]`) call should run on the caller's
/// thread; same criterion as [`plan_for`]'s inline branch.
fn run_inline(workers: usize, len: usize) -> bool {
    workers <= 1 || (effective_forced() == 0 && len < MIN_PAR_LEN)
}

/// Order-preserving parallel map over mutable slice elements.
fn map_mut_indexed<T: Send, R: Send>(
    data: &mut [T],
    split: Split,
    f: impl Fn(usize, &mut T) -> R + Sync,
) -> Vec<R> {
    let parts = run_mut_chunks(data, false, split, |base, ch| {
        ch.iter_mut().enumerate().map(|(i, t)| f(base + i, t)).collect::<Vec<R>>()
    });
    let mut out = Vec::with_capacity(data.len());
    for p in parts {
        out.extend(p);
    }
    out
}

/// Collection target of a parallel `collect` (only `Vec` is needed).
pub trait FromParallelVec<R>: Sized {
    fn from_parallel_vec(v: Vec<R>) -> Self;
}

impl<R> FromParallelVec<R> for Vec<R> {
    fn from_parallel_vec(v: Vec<R>) -> Self {
        v
    }
}

// ---------------------------------------------------------------- slices

/// Parallel iterator over `&mut [T]`.
pub struct ParIterMut<'a, T> {
    data: &'a mut [T],
    split: Split,
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Lowers (or raises) the inline-vs-spawn threshold for this call:
    /// the slice splits across threads whenever `len >= min_len`
    /// (default [`MIN_PAR_LEN`]). Mirrors rayon's `with_min_len` in
    /// spirit — call sites whose per-element body is heavy (a full
    /// CONGEST node step) want threads long before 4096 elements.
    /// Callers coordinating external chunk-local state must compute
    /// their partition with [`chunk_plan_with_min_len`] using the same
    /// value.
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.split = Split::MinLen(min_len);
        self
    }

    /// Pins this call's partition to a caller-captured [`ChunkPlan`]
    /// (from [`chunk_plan_with_min_len`]): the element→thread mapping
    /// becomes a pure function of the plan, unaffected by any
    /// [`force_workers_for_tests`] / `CK_FORCED_WORKERS` change after
    /// the capture. Callers that key external chunk-local state off a
    /// plan (the round engine's SoA node-state arena) pass that exact
    /// plan here, so the executing partition and the state's layout
    /// provably agree for every call sharing the capture. The plan
    /// must have been computed for this slice's length.
    pub fn with_chunk_plan(mut self, plan: ChunkPlan) -> Self {
        self.split = Split::Pinned(plan);
        self
    }

    pub fn map<R, F>(self, f: F) -> MapMut<'a, T, F>
    where
        R: Send,
        F: Fn(&mut T) -> R + Sync,
    {
        MapMut { data: self.data, split: self.split, f }
    }

    pub fn enumerate(self) -> EnumerateMut<'a, T> {
        EnumerateMut { data: self.data, split: self.split }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        run_mut_chunks(self.data, false, self.split, |_, ch| ch.iter_mut().for_each(&f));
    }
}

pub struct MapMut<'a, T, F> {
    data: &'a mut [T],
    split: Split,
    f: F,
}

impl<'a, T: Send, F> MapMut<'a, T, F> {
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(&mut T) -> R + Sync,
        C: FromParallelVec<R>,
    {
        let f = self.f;
        C::from_parallel_vec(map_mut_indexed(self.data, self.split, |_, t| f(t)))
    }
}

pub struct EnumerateMut<'a, T> {
    data: &'a mut [T],
    split: Split,
}

impl<'a, T: Send> EnumerateMut<'a, T> {
    /// See [`ParIterMut::with_min_len`].
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.split = Split::MinLen(min_len);
        self
    }

    /// See [`ParIterMut::with_chunk_plan`].
    pub fn with_chunk_plan(mut self, plan: ChunkPlan) -> Self {
        self.split = Split::Pinned(plan);
        self
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut T)) + Sync,
    {
        run_mut_chunks(self.data, false, self.split, |base, ch| {
            ch.iter_mut().enumerate().for_each(|(i, t)| f((base + i, t)));
        });
    }

    pub fn map<R, F>(self, f: F) -> EnumerateMapMut<'a, T, F>
    where
        R: Send,
        F: Fn((usize, &mut T)) -> R + Sync,
    {
        EnumerateMapMut { data: self.data, split: self.split, f }
    }

    /// Mirrors rayon's `fold`: each chunk folds its items from a fresh
    /// `identity()`; combine the chunk results with the returned
    /// adapter's `reduce`.
    pub fn fold<R, ID, F>(self, identity: ID, fold_op: F) -> EnumerateFoldMut<'a, T, ID, F>
    where
        R: Send,
        ID: Fn() -> R + Sync,
        F: Fn(R, (usize, &mut T)) -> R + Sync,
    {
        EnumerateFoldMut { data: self.data, split: self.split, identity, fold_op }
    }
}

pub struct EnumerateFoldMut<'a, T, ID, F> {
    data: &'a mut [T],
    split: Split,
    identity: ID,
    fold_op: F,
}

impl<'a, T: Send, ID, F> EnumerateFoldMut<'a, T, ID, F> {
    /// Combines per-chunk fold results in input order. With an
    /// associative `op` (and `identity` a true identity) this equals
    /// the sequential left fold.
    pub fn reduce<R, ID2, OP>(self, identity: ID2, op: OP) -> R
    where
        R: Send,
        ID: Fn() -> R + Sync,
        F: Fn(R, (usize, &mut T)) -> R + Sync,
        ID2: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        let (identity_fn, fold_op) = (&self.identity, &self.fold_op);
        let parts = run_mut_chunks(self.data, false, self.split, |base, ch| {
            let mut acc = identity_fn();
            for (i, t) in ch.iter_mut().enumerate() {
                acc = fold_op(acc, (base + i, t));
            }
            acc
        });
        parts.into_iter().fold(identity(), &op)
    }
}

pub struct EnumerateMapMut<'a, T, F> {
    data: &'a mut [T],
    split: Split,
    f: F,
}

impl<'a, T: Send, F> EnumerateMapMut<'a, T, F> {
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn((usize, &mut T)) -> R + Sync,
        C: FromParallelVec<R>,
    {
        let f = self.f;
        C::from_parallel_vec(map_mut_indexed(self.data, self.split, |i, t| f((i, t))))
    }

    /// Mirrors rayon's `reduce`: folds chunk-locally from `identity`,
    /// then combines the per-chunk results in input order. With an
    /// associative `op` this equals the sequential left fold.
    pub fn reduce<R, ID, OP>(self, identity: ID, op: OP) -> R
    where
        R: Send,
        F: Fn((usize, &mut T)) -> R + Sync,
        ID: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        let f = self.f;
        let parts = run_mut_chunks(self.data, false, self.split, |base, ch| {
            ch.iter_mut().enumerate().map(|(i, t)| f((base + i, t))).fold(identity(), &op)
        });
        parts.into_iter().fold(identity(), &op)
    }
}

/// Parallel iterator over contiguous mutable chunks of a slice,
/// mirroring rayon's `par_chunks_mut`. Unlike the element-wise
/// adapters, the chunk size is an *explicit* granularity choice by the
/// caller — batch runners size one chunk per shard — so the
/// [`MIN_PAR_LEN`] heuristic does not apply: chunks run on scoped
/// threads whenever more than one worker is available (each chunk's
/// work is presumed heavy). Like real rayon, concurrency is bounded by
/// the pool width: chunks are multiplexed round-robin onto at most
/// [`current_num_threads`] workers, so a caller asking for thousands
/// of tiny chunks gets thousands of `f` calls, not thousands of OS
/// threads. Chunk order and contents match `slice::chunks_mut`.
pub struct ParChunksMut<'a, T> {
    data: &'a mut [T],
    chunk: usize,
    min_items: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Runs inline when the slice holds fewer than `min_items` total
    /// elements (default 0 = always spawn when >1 worker fits).
    /// Shard runners set a small floor so a two-job batch does not pay
    /// thread spawn-and-join for work that finishes in microseconds.
    pub fn with_min_items(mut self, min_items: usize) -> Self {
        self.min_items = min_items;
        self
    }

    pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
        EnumerateChunksMut { data: self.data, chunk: self.chunk, min_items: self.min_items }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, ch)| f(ch));
    }
}

pub struct EnumerateChunksMut<'a, T> {
    data: &'a mut [T],
    chunk: usize,
    min_items: usize,
}

impl<'a, T: Send> EnumerateChunksMut<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let chunk = self.chunk.max(1);
        let chunks = self.data.len().div_ceil(chunk);
        let workers = worker_count(chunks);
        // The min-items floor is a caller tuning choice, so unlike
        // MIN_PAR_LEN it is honored even under forced workers.
        if workers <= 1 || self.data.len() < self.min_items {
            self.data.chunks_mut(chunk).enumerate().for_each(f);
            return;
        }
        // Deal chunks round-robin onto exactly `workers` scoped
        // threads; each thread drains its hand in chunk order.
        let mut hands: Vec<Vec<(usize, &mut [T])>> = (0..workers).map(|_| Vec::new()).collect();
        for (ci, ch) in self.data.chunks_mut(chunk).enumerate() {
            hands[ci % workers].push((ci, ch));
        }
        std::thread::scope(|s| {
            let f = &f;
            let handles: Vec<_> = hands
                .into_iter()
                .map(|hand| s.spawn(move || hand.into_iter().for_each(|(ci, ch)| f((ci, ch)))))
                .collect();
            for h in handles {
                h.join().expect("worker panicked");
            }
        });
    }
}

/// Parallel iterator over `&[T]`.
pub struct ParIter<'a, T> {
    data: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<R, F>(self, f: F) -> MapRef<'a, T, F>
    where
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        MapRef { data: self.data, f }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&T) + Sync,
    {
        let n = self.data.len();
        let workers = worker_count(n);
        if run_inline(workers, n) {
            self.data.iter().for_each(f);
            return;
        }
        let chunk = n.div_ceil(workers);
        std::thread::scope(|s| {
            let f = &f;
            let handles: Vec<_> =
                self.data.chunks(chunk).map(|ch| s.spawn(move || ch.iter().for_each(f))).collect();
            for h in handles {
                h.join().expect("worker panicked");
            }
        });
    }
}

pub struct MapRef<'a, T, F> {
    data: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> MapRef<'a, T, F> {
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(&T) -> R + Sync,
        C: FromParallelVec<R>,
    {
        let n = self.data.len();
        let workers = worker_count(n);
        let f = self.f;
        if run_inline(workers, n) {
            return C::from_parallel_vec(self.data.iter().map(f).collect());
        }
        let chunk = n.div_ceil(workers);
        let parts: Vec<Vec<R>> = std::thread::scope(|s| {
            let f = &f;
            let handles: Vec<_> = self
                .data
                .chunks(chunk)
                .map(|ch| s.spawn(move || ch.iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });
        let mut out = Vec::with_capacity(n);
        for p in parts {
            out.extend(p);
        }
        C::from_parallel_vec(out)
    }
}

// ---------------------------------------------------------------- ranges

/// Parallel iterator over an exclusive integer range.
pub struct RangePar<T> {
    start: T,
    end: T,
}

pub struct RangeMap<T, F> {
    start: T,
    end: T,
    f: F,
}

macro_rules! impl_range_par {
    ($($t:ty),*) => {$(
        impl RangePar<$t> {
            pub fn map<R, F>(self, f: F) -> RangeMap<$t, F>
            where
                R: Send,
                F: Fn($t) -> R + Sync,
            {
                RangeMap { start: self.start, end: self.end, f }
            }
        }

        impl<F> RangeMap<$t, F> {
            pub fn collect<C, R>(self) -> C
            where
                R: Send,
                F: Fn($t) -> R + Sync,
                C: FromParallelVec<R>,
            {
                let mut idx: Vec<$t> = (self.start..self.end).collect();
                let f = self.f;
                C::from_parallel_vec(map_mut_indexed(&mut idx, Split::MinLen(MIN_PAR_LEN), |_, v| f(*v)))
            }
        }

        impl IntoParallelIterator for core::ops::Range<$t> {
            type Iter = RangePar<$t>;
            fn into_par_iter(self) -> RangePar<$t> {
                RangePar { start: self.start, end: self.end }
            }
        }
    )*};
}

/// Conversion into a parallel iterator, mirroring rayon's trait of the
/// same name for the types this workspace fans out over.
pub trait IntoParallelIterator {
    type Iter;
    fn into_par_iter(self) -> Self::Iter;
}

impl_range_par!(u32, u64, usize);

/// Extension traits providing `par_iter` / `par_iter_mut` on slices.
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParIter<'_, T>;
}

pub trait ParallelSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;

    /// Parallel iterator over contiguous mutable chunks of `chunk`
    /// elements (the last may be shorter); see [`ParChunksMut`].
    fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { data: self }
    }
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { data: self, split: Split::MinLen(MIN_PAR_LEN) }
    }

    fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T> {
        ParChunksMut { data: self, chunk, min_items: 0 }
    }
}

impl<T: Sync> ParallelSlice<T> for Vec<T> {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { data: self }
    }
}

impl<T: Send> ParallelSliceMut<T> for Vec<T> {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { data: self, split: Split::MinLen(MIN_PAR_LEN) }
    }

    fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T> {
        ParChunksMut { data: self, chunk, min_items: 0 }
    }
}

/// The drop-in prelude, mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{FromParallelVec, IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let mut v: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = v.par_iter_mut().map(|x| *x * 2).collect();
        assert_eq!(doubled.len(), 10_000);
        assert!(doubled.iter().enumerate().all(|(i, &d)| d == 2 * i as u64));
    }

    #[test]
    fn for_each_mutates_every_element() {
        let mut v = vec![1u32; 9000];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 2));
    }

    #[test]
    fn enumerate_indices_are_global() {
        let mut v = vec![0usize; 10_000];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i));
    }

    #[test]
    fn range_into_par_iter_collects_in_order() {
        let out: Vec<u64> = (0u64..5000).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out.first(), Some(&1));
        assert_eq!(out.last(), Some(&5000));
        assert!(out.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn par_chunks_mut_covers_every_chunk_with_global_indices() {
        // Small input: the explicit-granularity path must still run
        // every chunk (inline on 1 worker, threaded otherwise).
        let mut v = vec![0usize; 10];
        v.par_chunks_mut(4).enumerate().for_each(|(ci, ch)| {
            for x in ch.iter_mut() {
                *x = ci + 1;
            }
        });
        assert_eq!(v, vec![1, 1, 1, 1, 2, 2, 2, 2, 3, 3]);

        // Forced workers: exercise the genuinely threaded path.
        struct Reset;
        impl Drop for Reset {
            fn drop(&mut self) {
                crate::force_workers_for_tests(0);
            }
        }
        let _reset = Reset;
        crate::force_workers_for_tests(3);
        let mut v = vec![0usize; 10];
        v.par_chunks_mut(3).for_each(|ch| ch.iter_mut().for_each(|x| *x += 7));
        assert!(v.iter().all(|&x| x == 7));

        // Far more chunks than workers: every chunk still runs with its
        // global index, multiplexed onto the bounded worker set.
        let mut v = vec![0usize; 500];
        v.par_chunks_mut(1).enumerate().for_each(|(ci, ch)| ch[0] = ci);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i));
    }

    #[test]
    fn small_inputs_run_inline() {
        let mut v = vec![3u8; 5];
        let out: Vec<u8> = v.par_iter_mut().map(|x| *x).collect();
        assert_eq!(out, vec![3; 5]);
        let empty: Vec<u8> = Vec::new().par_iter().map(|x: &u8| *x).collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn chunk_plan_math() {
        use crate::plan_for;
        // Below the threshold: inline, one logical chunk.
        assert_eq!(
            plan_for(100, 8, 0, 4096),
            crate::ChunkPlan { len: 100, workers: 1, chunk_len: 100 }
        );
        // Above the threshold: ceil-divided contiguous chunks.
        assert_eq!(
            plan_for(10_000, 8, 0, 4096),
            crate::ChunkPlan { len: 10_000, workers: 8, chunk_len: 1250 }
        );
        // A lowered per-call threshold flips the same length to spawn.
        assert_eq!(plan_for(100, 8, 0, 64).workers, 8);
        assert_eq!(plan_for(100, 8, 0, 64).chunk_len, 13);
        // Forced workers bypass the length threshold entirely...
        assert_eq!(plan_for(10, 1, 4, 4096).workers, 4);
        // ...but never exceed the element count.
        assert_eq!(plan_for(3, 1, 8, 4096).workers, 3);
        // Degenerate inputs stay well-defined: chunk_len >= 1.
        assert_eq!(plan_for(0, 8, 0, 4096).chunk_len, 1);
        assert_eq!(plan_for(0, 8, 2, 4096).workers, 1);
        // One core, nothing forced: always inline.
        assert_eq!(plan_for(1_000_000, 1, 0, 0).workers, 1);

        // chunk_of maps indices onto the contiguous partition.
        let p = plan_for(10, 8, 4, 4096);
        assert_eq!((p.workers, p.chunk_len, p.chunks()), (4, 3, 4));
        assert_eq!(p.chunk_of(0), 0);
        assert_eq!(p.chunk_of(2), 0);
        assert_eq!(p.chunk_of(3), 1);
        assert_eq!(p.chunk_of(9), 3);
    }

    #[test]
    fn with_min_len_override_is_respected() {
        struct Reset;
        impl Drop for Reset {
            fn drop(&mut self) {
                crate::force_workers_for_tests(0);
            }
        }
        let _reset = Reset;
        // Forced to 3 workers so the threaded path is real even on a
        // 1-core machine; with_min_len(8) must still produce correct,
        // order-preserving results on a slice far below MIN_PAR_LEN.
        crate::force_workers_for_tests(3);
        let plan = crate::chunk_plan_with_min_len(10, 8);
        assert_eq!((plan.workers, plan.chunk_len), (3, 4));
        let mut v = vec![0usize; 10];
        v.par_iter_mut().with_min_len(8).enumerate().for_each(|(i, x)| *x = i + 1);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i + 1));

        // fold/reduce over the same lowered threshold must equal the
        // sequential fold (order-preserving combine).
        let mut v: Vec<u64> = (0..100).collect();
        let sum = v
            .par_iter_mut()
            .enumerate()
            .with_min_len(16)
            .fold(|| 0u64, |acc, (i, x)| acc + *x + i as u64)
            .reduce(|| 0u64, |a, b| a + b);
        assert_eq!(sum, 2 * (0..100u64).sum::<u64>());

        // Without the override the same tiny slice stays inline under
        // a non-forced plan: workers == 1 when nothing is forced and
        // len < MIN_PAR_LEN (cores may exceed 1 on the host, so only
        // check the planner's inline decision directly).
        assert_eq!(crate::plan_for(10, 8, 0, crate::MIN_PAR_LEN).workers, 1);
    }

    #[test]
    fn with_chunk_plan_pins_partition_across_forced_worker_changes() {
        // A pinned plan is a pure function of its fields: the executing
        // partition must match it exactly no matter what the global
        // forced-worker state says at call time. This is the contract
        // the round engine's per-run capture (and the SoA arena's
        // chunk-shared scratch) relies on.
        let plan = crate::ChunkPlan { len: 12, workers: 4, chunk_len: 3 };
        // No forcing in effect (and len far below MIN_PAR_LEN, which
        // would normally run inline): the pinned plan must still split
        // into its own chunks. Record each element's observed chunk
        // base and check it against the plan's chunk_of mapping.
        let mut v = vec![usize::MAX; 12];
        v.par_iter_mut()
            .with_chunk_plan(plan)
            .enumerate()
            .fold(Vec::new, |mut acc, (i, x)| {
                // Chunk-local fold: every element folded together came
                // from one contiguous chunk of the pinned plan.
                *x = i;
                acc.push(i);
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                // Each incoming fold part must sit entirely inside one
                // pinned chunk (the accumulator `a` spans the chunks
                // already combined, so only `b` is checked).
                if let Some(&first) = b.first() {
                    assert!(
                        b.iter().all(|&i| plan.chunk_of(i) == plan.chunk_of(first)),
                        "fold part crossed a pinned chunk boundary: {b:?}"
                    );
                }
                a.append(&mut b);
                a
            });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i));

        // Mutating the forced state between capture and call must not
        // change the partition: pin 2 chunks, then force 5 workers —
        // the call still splits into exactly the pinned 2 chunks.
        struct Reset;
        impl Drop for Reset {
            fn drop(&mut self) {
                crate::force_workers_for_tests(0);
            }
        }
        let _reset = Reset;
        let pinned = crate::ChunkPlan { len: 10, workers: 2, chunk_len: 5 };
        crate::force_workers_for_tests(5);
        let bases: Vec<usize> = {
            let mut v = vec![0u8; 10];
            let parts =
                crate::run_mut_chunks(&mut v, false, crate::Split::Pinned(pinned), |base, ch| {
                    (base, ch.len())
                });
            parts.iter().for_each(|&(base, len)| assert!(len <= pinned.chunk_len, "{base}/{len}"));
            parts.into_iter().map(|(base, _)| base).collect()
        };
        assert_eq!(bases, vec![0, 5], "pinned partition must ignore the forced-worker state");
    }

    #[test]
    #[should_panic(expected = "different length")]
    fn with_chunk_plan_rejects_mismatched_length() {
        let plan = crate::ChunkPlan { len: 8, workers: 2, chunk_len: 4 };
        let mut v = vec![0usize; 9];
        v.par_iter_mut().with_chunk_plan(plan).for_each(|x| *x += 1);
    }

    #[test]
    fn with_min_items_keeps_small_chunked_batches_inline() {
        struct Reset;
        impl Drop for Reset {
            fn drop(&mut self) {
                crate::force_workers_for_tests(0);
            }
        }
        let _reset = Reset;
        crate::force_workers_for_tests(3);
        // Below the floor: inline, still covers every chunk.
        let mut v = vec![0usize; 4];
        v.par_chunks_mut(2).with_min_items(8).enumerate().for_each(|(ci, ch)| {
            for x in ch.iter_mut() {
                *x = ci + 1;
            }
        });
        assert_eq!(v, vec![1, 1, 2, 2]);
        // At or above the floor: threaded, same output contract.
        let mut v = vec![0usize; 8];
        v.par_chunks_mut(2).with_min_items(8).enumerate().for_each(|(ci, ch)| {
            for x in ch.iter_mut() {
                *x = ci + 1;
            }
        });
        assert_eq!(v, vec![1, 1, 2, 2, 3, 3, 4, 4]);
    }
}
