//! Offline stand-in for `rayon`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the fragment of rayon's API the workspace uses — `par_iter_mut` /
//! `par_iter` over slices, `into_par_iter` over integer ranges, and the
//! `map` / `enumerate` / `for_each` / `collect` adapters — implemented
//! with `std::thread::scope` over contiguous chunks.
//!
//! Differences from real rayon, by design:
//!
//! * no global thread pool — threads are spawned per call and joined
//!   before it returns (scoped, so borrowed captures work exactly as
//!   they do with rayon);
//! * small inputs (below [`MIN_PAR_LEN`]) run inline on the caller's
//!   thread, since per-call spawning would dominate;
//! * adapters are executed eagerly at the terminal operation; there is
//!   no lazy iterator fusion beyond the single `map` this workspace
//!   needs.
//!
//! Chunks are contiguous and results are reassembled in input order, so
//! `collect` is order-preserving — the property the round engine's
//! determinism contract relies on.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Inputs shorter than this run inline; scoped-thread spawning costs a
/// few tens of microseconds per call, which only pays off for wide loops.
pub const MIN_PAR_LEN: usize = 4096;

/// Test override for the worker count (0 = use the core count).
static FORCED_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Forces every parallel call to split across exactly `n` scoped
/// threads regardless of core count or input length (0 restores the
/// default). For tests: lets single-core machines and small inputs
/// exercise the genuinely multi-threaded code paths that callers'
/// unsafe code (e.g. the round engine's shared arenas) must survive.
pub fn force_workers_for_tests(n: usize) {
    FORCED_WORKERS.store(n, Ordering::Relaxed);
}

/// Number of worker threads a wide parallel call will use — the forced
/// test override if set, else the core count. Mirrors rayon's
/// `current_num_threads` so callers (e.g. benchmark metadata) can
/// report the parallel executor's width honestly.
pub fn current_num_threads() -> usize {
    let forced = FORCED_WORKERS.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

fn worker_count(len: usize) -> usize {
    let forced = FORCED_WORKERS.load(Ordering::Relaxed);
    if forced > 0 {
        return forced.min(len.max(1));
    }
    let cores = std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
    cores.min(len)
}

/// True when a call should run on the caller's thread. The length
/// threshold is bypassed under a test-forced worker count.
fn run_inline(workers: usize, len: usize) -> bool {
    workers <= 1 || (FORCED_WORKERS.load(Ordering::Relaxed) == 0 && len < MIN_PAR_LEN)
}

/// Runs `f(start_index, chunk)` over contiguous chunks of `data` on
/// scoped threads, returning per-chunk outputs in input order.
fn run_mut_chunks<T: Send, R: Send>(
    data: &mut [T],
    inline: bool,
    f: impl Fn(usize, &mut [T]) -> R + Sync,
) -> Vec<R> {
    let n = data.len();
    let workers = worker_count(n);
    if inline || run_inline(workers, n) {
        if n == 0 {
            return Vec::new();
        }
        return vec![f(0, data)];
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = data
            .chunks_mut(chunk)
            .enumerate()
            .map(|(ci, ch)| s.spawn(move || f(ci * chunk, ch)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    })
}

/// Order-preserving parallel map over mutable slice elements.
fn map_mut_indexed<T: Send, R: Send>(
    data: &mut [T],
    f: impl Fn(usize, &mut T) -> R + Sync,
) -> Vec<R> {
    let parts = run_mut_chunks(data, false, |base, ch| {
        ch.iter_mut().enumerate().map(|(i, t)| f(base + i, t)).collect::<Vec<R>>()
    });
    let mut out = Vec::with_capacity(data.len());
    for p in parts {
        out.extend(p);
    }
    out
}

/// Collection target of a parallel `collect` (only `Vec` is needed).
pub trait FromParallelVec<R>: Sized {
    fn from_parallel_vec(v: Vec<R>) -> Self;
}

impl<R> FromParallelVec<R> for Vec<R> {
    fn from_parallel_vec(v: Vec<R>) -> Self {
        v
    }
}

// ---------------------------------------------------------------- slices

/// Parallel iterator over `&mut [T]`.
pub struct ParIterMut<'a, T> {
    data: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    pub fn map<R, F>(self, f: F) -> MapMut<'a, T, F>
    where
        R: Send,
        F: Fn(&mut T) -> R + Sync,
    {
        MapMut { data: self.data, f }
    }

    pub fn enumerate(self) -> EnumerateMut<'a, T> {
        EnumerateMut { data: self.data }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        run_mut_chunks(self.data, false, |_, ch| ch.iter_mut().for_each(&f));
    }
}

pub struct MapMut<'a, T, F> {
    data: &'a mut [T],
    f: F,
}

impl<'a, T: Send, F> MapMut<'a, T, F> {
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(&mut T) -> R + Sync,
        C: FromParallelVec<R>,
    {
        let f = self.f;
        C::from_parallel_vec(map_mut_indexed(self.data, |_, t| f(t)))
    }
}

pub struct EnumerateMut<'a, T> {
    data: &'a mut [T],
}

impl<'a, T: Send> EnumerateMut<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut T)) + Sync,
    {
        run_mut_chunks(self.data, false, |base, ch| {
            ch.iter_mut().enumerate().for_each(|(i, t)| f((base + i, t)));
        });
    }

    pub fn map<R, F>(self, f: F) -> EnumerateMapMut<'a, T, F>
    where
        R: Send,
        F: Fn((usize, &mut T)) -> R + Sync,
    {
        EnumerateMapMut { data: self.data, f }
    }

    /// Mirrors rayon's `fold`: each chunk folds its items from a fresh
    /// `identity()`; combine the chunk results with the returned
    /// adapter's `reduce`.
    pub fn fold<R, ID, F>(self, identity: ID, fold_op: F) -> EnumerateFoldMut<'a, T, ID, F>
    where
        R: Send,
        ID: Fn() -> R + Sync,
        F: Fn(R, (usize, &mut T)) -> R + Sync,
    {
        EnumerateFoldMut { data: self.data, identity, fold_op }
    }
}

pub struct EnumerateFoldMut<'a, T, ID, F> {
    data: &'a mut [T],
    identity: ID,
    fold_op: F,
}

impl<'a, T: Send, ID, F> EnumerateFoldMut<'a, T, ID, F> {
    /// Combines per-chunk fold results in input order. With an
    /// associative `op` (and `identity` a true identity) this equals
    /// the sequential left fold.
    pub fn reduce<R, ID2, OP>(self, identity: ID2, op: OP) -> R
    where
        R: Send,
        ID: Fn() -> R + Sync,
        F: Fn(R, (usize, &mut T)) -> R + Sync,
        ID2: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        let (identity_fn, fold_op) = (&self.identity, &self.fold_op);
        let parts = run_mut_chunks(self.data, false, |base, ch| {
            let mut acc = identity_fn();
            for (i, t) in ch.iter_mut().enumerate() {
                acc = fold_op(acc, (base + i, t));
            }
            acc
        });
        parts.into_iter().fold(identity(), &op)
    }
}

pub struct EnumerateMapMut<'a, T, F> {
    data: &'a mut [T],
    f: F,
}

impl<'a, T: Send, F> EnumerateMapMut<'a, T, F> {
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn((usize, &mut T)) -> R + Sync,
        C: FromParallelVec<R>,
    {
        let f = self.f;
        C::from_parallel_vec(map_mut_indexed(self.data, |i, t| f((i, t))))
    }

    /// Mirrors rayon's `reduce`: folds chunk-locally from `identity`,
    /// then combines the per-chunk results in input order. With an
    /// associative `op` this equals the sequential left fold.
    pub fn reduce<R, ID, OP>(self, identity: ID, op: OP) -> R
    where
        R: Send,
        F: Fn((usize, &mut T)) -> R + Sync,
        ID: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        let f = self.f;
        let parts = run_mut_chunks(self.data, false, |base, ch| {
            ch.iter_mut().enumerate().map(|(i, t)| f((base + i, t))).fold(identity(), &op)
        });
        parts.into_iter().fold(identity(), &op)
    }
}

/// Parallel iterator over contiguous mutable chunks of a slice,
/// mirroring rayon's `par_chunks_mut`. Unlike the element-wise
/// adapters, the chunk size is an *explicit* granularity choice by the
/// caller — batch runners size one chunk per shard — so the
/// [`MIN_PAR_LEN`] heuristic does not apply: chunks run on scoped
/// threads whenever more than one worker is available (each chunk's
/// work is presumed heavy). Like real rayon, concurrency is bounded by
/// the pool width: chunks are multiplexed round-robin onto at most
/// [`current_num_threads`] workers, so a caller asking for thousands
/// of tiny chunks gets thousands of `f` calls, not thousands of OS
/// threads. Chunk order and contents match `slice::chunks_mut`.
pub struct ParChunksMut<'a, T> {
    data: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
        EnumerateChunksMut { data: self.data, chunk: self.chunk }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, ch)| f(ch));
    }
}

pub struct EnumerateChunksMut<'a, T> {
    data: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> EnumerateChunksMut<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let chunk = self.chunk.max(1);
        let chunks = self.data.len().div_ceil(chunk);
        let workers = worker_count(chunks);
        if workers <= 1 {
            self.data.chunks_mut(chunk).enumerate().for_each(f);
            return;
        }
        // Deal chunks round-robin onto exactly `workers` scoped
        // threads; each thread drains its hand in chunk order.
        let mut hands: Vec<Vec<(usize, &mut [T])>> = (0..workers).map(|_| Vec::new()).collect();
        for (ci, ch) in self.data.chunks_mut(chunk).enumerate() {
            hands[ci % workers].push((ci, ch));
        }
        std::thread::scope(|s| {
            let f = &f;
            let handles: Vec<_> = hands
                .into_iter()
                .map(|hand| s.spawn(move || hand.into_iter().for_each(|(ci, ch)| f((ci, ch)))))
                .collect();
            for h in handles {
                h.join().expect("worker panicked");
            }
        });
    }
}

/// Parallel iterator over `&[T]`.
pub struct ParIter<'a, T> {
    data: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<R, F>(self, f: F) -> MapRef<'a, T, F>
    where
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        MapRef { data: self.data, f }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&T) + Sync,
    {
        let n = self.data.len();
        let workers = worker_count(n);
        if run_inline(workers, n) {
            self.data.iter().for_each(f);
            return;
        }
        let chunk = n.div_ceil(workers);
        std::thread::scope(|s| {
            let f = &f;
            let handles: Vec<_> =
                self.data.chunks(chunk).map(|ch| s.spawn(move || ch.iter().for_each(f))).collect();
            for h in handles {
                h.join().expect("worker panicked");
            }
        });
    }
}

pub struct MapRef<'a, T, F> {
    data: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> MapRef<'a, T, F> {
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(&T) -> R + Sync,
        C: FromParallelVec<R>,
    {
        let n = self.data.len();
        let workers = worker_count(n);
        let f = self.f;
        if run_inline(workers, n) {
            return C::from_parallel_vec(self.data.iter().map(f).collect());
        }
        let chunk = n.div_ceil(workers);
        let parts: Vec<Vec<R>> = std::thread::scope(|s| {
            let f = &f;
            let handles: Vec<_> = self
                .data
                .chunks(chunk)
                .map(|ch| s.spawn(move || ch.iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });
        let mut out = Vec::with_capacity(n);
        for p in parts {
            out.extend(p);
        }
        C::from_parallel_vec(out)
    }
}

// ---------------------------------------------------------------- ranges

/// Parallel iterator over an exclusive integer range.
pub struct RangePar<T> {
    start: T,
    end: T,
}

pub struct RangeMap<T, F> {
    start: T,
    end: T,
    f: F,
}

macro_rules! impl_range_par {
    ($($t:ty),*) => {$(
        impl RangePar<$t> {
            pub fn map<R, F>(self, f: F) -> RangeMap<$t, F>
            where
                R: Send,
                F: Fn($t) -> R + Sync,
            {
                RangeMap { start: self.start, end: self.end, f }
            }
        }

        impl<F> RangeMap<$t, F> {
            pub fn collect<C, R>(self) -> C
            where
                R: Send,
                F: Fn($t) -> R + Sync,
                C: FromParallelVec<R>,
            {
                let mut idx: Vec<$t> = (self.start..self.end).collect();
                let f = self.f;
                C::from_parallel_vec(map_mut_indexed(&mut idx, |_, v| f(*v)))
            }
        }

        impl IntoParallelIterator for core::ops::Range<$t> {
            type Iter = RangePar<$t>;
            fn into_par_iter(self) -> RangePar<$t> {
                RangePar { start: self.start, end: self.end }
            }
        }
    )*};
}

/// Conversion into a parallel iterator, mirroring rayon's trait of the
/// same name for the types this workspace fans out over.
pub trait IntoParallelIterator {
    type Iter;
    fn into_par_iter(self) -> Self::Iter;
}

impl_range_par!(u32, u64, usize);

/// Extension traits providing `par_iter` / `par_iter_mut` on slices.
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParIter<'_, T>;
}

pub trait ParallelSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;

    /// Parallel iterator over contiguous mutable chunks of `chunk`
    /// elements (the last may be shorter); see [`ParChunksMut`].
    fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { data: self }
    }
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { data: self }
    }

    fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T> {
        ParChunksMut { data: self, chunk }
    }
}

impl<T: Sync> ParallelSlice<T> for Vec<T> {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { data: self }
    }
}

impl<T: Send> ParallelSliceMut<T> for Vec<T> {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { data: self }
    }

    fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T> {
        ParChunksMut { data: self, chunk }
    }
}

/// The drop-in prelude, mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{FromParallelVec, IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let mut v: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = v.par_iter_mut().map(|x| *x * 2).collect();
        assert_eq!(doubled.len(), 10_000);
        assert!(doubled.iter().enumerate().all(|(i, &d)| d == 2 * i as u64));
    }

    #[test]
    fn for_each_mutates_every_element() {
        let mut v = vec![1u32; 9000];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 2));
    }

    #[test]
    fn enumerate_indices_are_global() {
        let mut v = vec![0usize; 10_000];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i));
    }

    #[test]
    fn range_into_par_iter_collects_in_order() {
        let out: Vec<u64> = (0u64..5000).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out.first(), Some(&1));
        assert_eq!(out.last(), Some(&5000));
        assert!(out.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn par_chunks_mut_covers_every_chunk_with_global_indices() {
        // Small input: the explicit-granularity path must still run
        // every chunk (inline on 1 worker, threaded otherwise).
        let mut v = vec![0usize; 10];
        v.par_chunks_mut(4).enumerate().for_each(|(ci, ch)| {
            for x in ch.iter_mut() {
                *x = ci + 1;
            }
        });
        assert_eq!(v, vec![1, 1, 1, 1, 2, 2, 2, 2, 3, 3]);

        // Forced workers: exercise the genuinely threaded path.
        struct Reset;
        impl Drop for Reset {
            fn drop(&mut self) {
                crate::force_workers_for_tests(0);
            }
        }
        let _reset = Reset;
        crate::force_workers_for_tests(3);
        let mut v = vec![0usize; 10];
        v.par_chunks_mut(3).for_each(|ch| ch.iter_mut().for_each(|x| *x += 7));
        assert!(v.iter().all(|&x| x == 7));

        // Far more chunks than workers: every chunk still runs with its
        // global index, multiplexed onto the bounded worker set.
        let mut v = vec![0usize; 500];
        v.par_chunks_mut(1).enumerate().for_each(|(ci, ch)| ch[0] = ci);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i));
    }

    #[test]
    fn small_inputs_run_inline() {
        let mut v = vec![3u8; 5];
        let out: Vec<u8> = v.par_iter_mut().map(|x| *x).collect();
        assert_eq!(out, vec![3; 5]);
        let empty: Vec<u8> = Vec::new().par_iter().map(|x: &u8| *x).collect();
        assert!(empty.is_empty());
    }
}
