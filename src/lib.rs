//! # ck-repro — reproduction of *Distributed Detection of Cycles*
//! (Fraigniaud & Olivetti, SPAA 2017)
//!
//! Umbrella crate re-exporting the workspace members; the examples and
//! cross-crate integration tests live here. See `README.md` for the
//! architecture overview, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-vs-measured record.

pub use ck_baselines as baselines;
pub use ck_congest as congest;
pub use ck_core as core;
pub use ck_graphgen as graphgen;
