//! Adversarial inputs: hostile ID assignments, rank-collision storms,
//! and boundary parameters. The paper's guarantees are worst-case over
//! IDs and 1-sided over randomness — these tests poke exactly there.

use ck_congest::engine::EngineConfig;
use ck_congest::graph::{Edge, Graph};
use ck_core::prune::PrunerKind;
use ck_core::session::TesterSession;
use ck_core::single::detect_ck_through_edge;
use ck_core::tester::TesterConfig;

/// One-shot tester run through a fresh session (the session-API form of
/// the old `run_tester` free function).
fn run_once(
    g: &ck_congest::graph::Graph,
    cfg: &TesterConfig,
    engine: &EngineConfig,
) -> Result<ck_core::tester::TesterRun, ck_congest::engine::EngineError> {
    TesterSession::from_config(*cfg, engine.clone()).unwrap().test(g)
}

use ck_graphgen::basic::{cycle, fan, theta};
use ck_graphgen::farness::{contains_ck, has_ck_through_edge, is_valid_ck};
use ck_graphgen::planted::matched_free_instance;

/// Hostile ID layouts: descending, huge and clustered, and
/// maximally-spread identities. Exactness (Lemma 2) must be label-blind.
#[test]
fn single_edge_exactness_under_hostile_ids() {
    let base = theta(3, 2);
    let n = base.n();
    let layouts: Vec<Vec<u64>> = vec![
        (0..n as u64).rev().collect(),                        // descending
        (0..n as u64).map(|i| u64::MAX - 1000 + i).collect(), // huge
        (0..n as u64).map(|i| i * 1_000_003).collect(),       // spread
        (0..n as u64).map(|i| if i % 2 == 0 { i } else { 1_000_000 + i }).collect(), // zigzag
    ];
    for ids in layouts {
        let g = base.with_ids(ids).unwrap();
        for k in 3..=8usize {
            for &e in g.edges() {
                let expected = has_ck_through_edge(&g, k, e);
                let got = detect_ck_through_edge(
                    &g,
                    k,
                    e,
                    PrunerKind::Representative,
                    &EngineConfig::default(),
                )
                .unwrap()
                .reject;
                assert_eq!(got, expected, "k={k} e={e:?} ids={:?}", g.ids());
            }
        }
    }
}

/// Rank-collision storm: on tiny graphs (m small) rank collisions are
/// frequent; the deterministic (rank, endpoints) tie-break must still
/// yield a unique arbitration winner and detection must never break on a
/// lone cycle, whatever the seed.
#[test]
fn tie_breaking_never_breaks_detection() {
    for k in 3..=8usize {
        let g = cycle(k);
        for seed in 0..50u64 {
            let cfg = TesterConfig { repetitions: Some(1), ..TesterConfig::new(k, 0.3, seed) };
            let run = run_once(&g, &cfg, &EngineConfig::default()).unwrap();
            assert!(run.reject, "C{k}, seed {seed}");
        }
    }
}

/// 1-sidedness under hostile IDs: no labeling may produce a false
/// reject.
#[test]
fn no_false_rejects_under_hostile_ids() {
    let base = matched_free_instance(36, 5);
    let n = base.n();
    let layouts: Vec<Vec<u64>> =
        vec![(0..n as u64).rev().collect(), (0..n as u64).map(|i| (i * 7919) % 100_000).collect()];
    for ids in layouts {
        let g: Graph = base.with_ids(ids).unwrap();
        for seed in 0..5u64 {
            let cfg = TesterConfig { repetitions: Some(2), ..TesterConfig::new(5, 0.1, seed) };
            assert!(!run_once(&g, &cfg, &EngineConfig::default()).unwrap().reject);
        }
    }
}

/// Boundary parameters: the smallest k (3), the largest supported k on a
/// long cycle, and k exceeding the node count.
#[test]
fn boundary_parameters() {
    // k = 3 on a triangle with extreme IDs.
    let tri = cycle(3).with_ids(vec![0, u64::MAX / 2, u64::MAX - 1]).unwrap();
    let run = detect_ck_through_edge(
        &tri,
        3,
        Edge::new(0, 1),
        PrunerKind::Representative,
        &EngineConfig::default(),
    )
    .unwrap();
    assert!(run.reject);

    // Large k (k = 15 needs sequences of length 7 — well within IdSeq).
    let long = cycle(15);
    let run = detect_ck_through_edge(
        &long,
        15,
        Edge::new(0, 14),
        PrunerKind::Representative,
        &EngineConfig::default(),
    )
    .unwrap();
    assert!(run.reject);
    assert!(!contains_ck(&long, 14));

    // k > n: trivially free.
    let small = cycle(4);
    for seed in 0..3u64 {
        let cfg = TesterConfig { repetitions: Some(2), ..TesterConfig::new(9, 0.2, seed) };
        assert!(!run_once(&small, &cfg, &EngineConfig::default()).unwrap().reject);
    }
}

/// Witnesses stay sound under hostile IDs (the reject path reconstructs
/// real cycles whatever the labels look like).
#[test]
fn witnesses_sound_under_hostile_ids() {
    let base = fan(4);
    let n = base.n();
    let g = base.with_ids((0..n as u64).map(|i| (n as u64 - i) * 17).collect()).unwrap();
    for k in [3usize, 5] {
        for &e in g.edges() {
            let run = detect_ck_through_edge(
                &g,
                k,
                e,
                PrunerKind::Representative,
                &EngineConfig::default(),
            )
            .unwrap();
            for v in &run.outcome.verdicts {
                for w in &v.all_witnesses {
                    let idx: Vec<_> = w
                        .cycle_ids()
                        .iter()
                        .map(|&id| g.index_of(id).expect("ids exist"))
                        .collect();
                    assert!(is_valid_ck(&g, k, &idx));
                }
            }
        }
    }
}

/// The minimum supported cycle length is 3 and the cap is MAX_K; both
/// ends of the constructor contract hold.
#[test]
fn k_range_contract() {
    use ck_core::seq::MAX_K;
    let g = cycle(5);
    let e = Edge::new(0, 1);
    let bad_low = std::panic::catch_unwind(|| {
        let _ =
            detect_ck_through_edge(&g, 2, e, PrunerKind::Representative, &EngineConfig::default());
    });
    assert!(bad_low.is_err(), "k = 2 must be rejected");
    let bad_high = std::panic::catch_unwind(|| {
        let _ = detect_ck_through_edge(
            &g,
            MAX_K + 1,
            e,
            PrunerKind::Representative,
            &EngineConfig::default(),
        );
    });
    assert!(bad_high.is_err(), "k beyond MAX_K must be rejected");
}
