//! Zero-steady-state-allocation regression gates, powered by
//! `ck_lint::alloc_gate`'s counting global allocator.
//!
//! The repo's hot paths document themselves as allocation-free once
//! warm: `Session::run` reruns recycle arenas and slot arrays,
//! `TesterSession::test` reruns additionally recycle per-node tester
//! scratch, and the `SeqPool` take/return cycle recycles payload
//! backings. These tests install [`CountingAlloc`] as the binary's
//! `#[global_allocator]` and assert the warm reruns perform **zero**
//! heap operations through the `_into` entry points — turning the
//! prose claims into regressions-fail-CI facts.
//!
//! Everything lives in ONE `#[test]`: the counters are process-global,
//! so concurrently running tests in the same binary would pollute each
//! other's measured regions.
#![cfg(feature = "alloc-gate")]

use ck_congest::engine::{Executor, RunOutcome};
use ck_congest::graph::{Graph, GraphBuilder};
use ck_congest::node::{Inbox, Outbox, Program, Status};
use ck_congest::session::Session;
use ck_core::msg::SeqPool;
use ck_core::seq::IdSeq;
use ck_core::session::TesterSession;
use ck_core::tester::{NodeLayout, TesterRun};
use ck_graphgen::planted::matched_free_instance;
use ck_lint::alloc_gate::{AllocGate, CountingAlloc};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Allocation-free flood program: each node learns the maximum
/// identity within `rounds` hops, broadcasting plain `u64`s.
struct FloodMax {
    best: u64,
    rounds: u32,
}

impl Program for FloodMax {
    type Msg = u64;
    type Verdict = u64;
    fn step(&mut self, round: u32, inbox: Inbox<'_, u64>, out: &mut Outbox<u64>) -> Status {
        for inc in inbox.iter() {
            self.best = self.best.max(*inc.msg);
        }
        if round >= self.rounds {
            return Status::Halted;
        }
        out.broadcast(self.best);
        Status::Running
    }
    fn verdict(&self) -> u64 {
        self.best
    }
}

fn path_graph(n: usize) -> Graph {
    GraphBuilder::new(n).edges((0..n as u32 - 1).map(|i| (i, i + 1))).build().unwrap()
}

#[test]
fn warm_reruns_perform_zero_heap_operations() {
    // Every contract below is a single-threaded warm path; scope the
    // counters to this thread so the libtest harness's own background
    // allocations cannot land inside a measured region.
    AllocGate::pin_to_current_thread();

    // Sanity: the counting allocator actually sees heap traffic.
    let gate = AllocGate::snapshot();
    let buf: Vec<u64> = Vec::with_capacity(1024);
    assert!(gate.delta().allocs >= 1, "counting allocator must observe Vec::with_capacity");
    drop(buf);

    // (a) Warm `Session::run_into` rerun: after the first run has
    // warmed arenas, slot array, and the rotated outcome buffer, a
    // rerun under the sequential executor touches the heap zero times.
    let g = path_graph(48);
    let mut session: Session<'_, u64> = Session::builder(&g).executor(Executor::Sequential).build();
    let mut out: RunOutcome<u64> = RunOutcome::default();
    for _ in 0..2 {
        session.run_into(|init| FloodMax { best: init.id, rounds: 6 }, &mut out).unwrap();
    }
    let expected = out.verdicts.clone();
    let gate = AllocGate::snapshot();
    for _ in 0..5 {
        session.run_into(|init| FloodMax { best: init.id, rounds: 6 }, &mut out).unwrap();
    }
    let d = gate.delta();
    assert_eq!(d.heap_ops(), 0, "warm Session::run_into rerun must not allocate: {d:?}");
    assert_eq!(out.verdicts, expected, "warm rerun must stay bit-identical");

    // (b) Warm `TesterSession::test_into` rerun on the accept path: the
    // full Ck tester — rank draws, Phase-2 sequence traffic, pruning,
    // verdict collection — reruns without heap traffic once the
    // session's workspace, scratch pool, and run buffer are warm. Both
    // node-state layouts carry the contract: the boxed per-node buffers
    // and the SoA arena (whose `prepare` must clear-and-resize over
    // kept capacity, never reallocate, on a same-shape rerun).
    let free = matched_free_instance(40, 5);
    for layout in [NodeLayout::Boxed, NodeLayout::Soa] {
        let mut tester = TesterSession::builder(5, 0.1)
            .seed(7)
            .repetitions(2)
            .layout(layout)
            .executor(Executor::Sequential)
            .build()
            .unwrap();
        let mut run = TesterRun::default();
        for _ in 0..2 {
            tester.test_into(&free, &mut run).unwrap();
            assert!(!run.reject, "matched free instance must be accepted");
        }
        let gate = AllocGate::snapshot();
        for _ in 0..3 {
            tester.test_into(&free, &mut run).unwrap();
        }
        let d = gate.delta();
        assert_eq!(
            d.heap_ops(),
            0,
            "warm TesterSession::test_into rerun must not allocate ({layout:?}): {d:?}"
        );
        assert!(!run.reject);
    }

    // (d) The serve-pool warm path: `ck_serve::serve::warm_job` —
    // reconfigure + `test_into`, exactly what a `ckserve` worker runs
    // per job — performs zero heap operations across a stream of
    // heterogeneous warm jobs (ε, seed, and repetition count all
    // changing job to job on a warm graph shape). This is the
    // steady-state claim behind the service's session pool.
    {
        use ck_core::tester::TesterConfig;
        let mut session = TesterSession::builder(5, 0.1)
            .seed(7)
            .repetitions(2)
            .executor(Executor::Sequential)
            .build()
            .unwrap();
        let mut run = TesterRun::default();
        let cfgs: Vec<TesterConfig> = (0..4u64)
            .map(|i| {
                let mut c = TesterConfig::new(5, if i % 2 == 0 { 0.1 } else { 0.15 }, 11 + i);
                c.repetitions = Some(1 + (i % 2) as u32);
                c
            })
            .collect();
        for cfg in &cfgs {
            ck_serve::serve::warm_job(&mut session, &free, *cfg, &mut run).unwrap();
            assert!(!run.reject);
        }
        let gate = AllocGate::snapshot();
        for _ in 0..3 {
            for cfg in &cfgs {
                ck_serve::serve::warm_job(&mut session, &free, *cfg, &mut run).unwrap();
            }
        }
        let d = gate.delta();
        assert_eq!(d.heap_ops(), 0, "warm serve-pool job must not allocate: {d:?}");
    }

    // (c) `SeqPool` take/return cycle: once the free list holds a
    // buffer of sufficient capacity, every bundle_from/put cycle is
    // served warm.
    let mut pool = SeqPool::new();
    let seqs: Vec<IdSeq> = (1..=8).map(|i| IdSeq::from_slice(&[i])).collect();
    for _ in 0..4 {
        let b = pool.bundle_from(&seqs);
        pool.put(b);
    }
    let gate = AllocGate::snapshot();
    for _ in 0..100 {
        let b = pool.bundle_from(&seqs);
        pool.put(b);
    }
    let d = gate.delta();
    assert_eq!(d.heap_ops(), 0, "warm SeqPool take/return cycle must not allocate: {d:?}");
    assert_eq!(pool.outstanding(), 0);
}
