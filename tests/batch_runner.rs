//! Property tests for the sharded multi-graph batch runner: its output
//! must be **bit-identical** to one-by-one `run_tester` calls — reports,
//! verdicts, wire/round counters, and `pool_outstanding` — across mixed
//! graph sizes, fault plans, shard counts, and both executors.

use ck_congest::engine::{EngineConfig, Executor};
use ck_congest::fault::FaultPlan;
use ck_congest::graph::Graph;
use ck_core::batch::BatchJob;
use ck_core::session::TesterSession;
use ck_core::tester::{TesterConfig, TesterRun};
use ck_graphgen::basic::cycle;
use ck_graphgen::planted::{eps_far_instance, matched_free_instance};
use proptest::prelude::*;

/// Builds one graph of a mixed family: planted ε-far instances, matched
/// free instances, and bare cycles, across a spread of sizes.
fn build_graph(kind: u8, n: usize, k: usize, seed: u64) -> Graph {
    match kind % 3 {
        0 => eps_far_instance(n, k, 0.1, seed).graph,
        1 => matched_free_instance(n, k),
        _ => cycle(k.max(3)),
    }
}

/// The full observable surface of a run: network verdict, repetitions,
/// every per-node verdict (including `pool_outstanding` and the
/// rejection witnesses), round count, and the complete per-round wire
/// statistics (messages, bits, link maxima).
#[allow(clippy::type_complexity)]
fn digest(
    r: &TesterRun,
) -> (bool, u32, Vec<ck_core::tester::NodeVerdict>, u32, bool, Vec<ck_congest::metrics::RoundStats>)
{
    (
        r.reject,
        r.repetitions,
        r.outcome.verdicts.clone(),
        r.outcome.report.rounds,
        r.outcome.report.all_halted,
        r.outcome.report.per_round.clone(),
    )
}

/// One-by-one reference runs: a fresh session per job.
fn run_once(
    g: &Graph,
    cfg: &TesterConfig,
    engine: &EngineConfig,
) -> Result<TesterRun, ck_congest::engine::EngineError> {
    TesterSession::from_config(*cfg, engine.clone()).unwrap().test(g)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// Batch output equals the sequential one-by-one loop bit for bit,
    /// for every shard count, and equals the parallel-executor loop in
    /// everything the determinism contract covers (the report's
    /// executor/threads labels are metadata, not output).
    #[test]
    fn batch_is_bit_identical_to_one_by_one(
        specs in proptest::collection::vec((0u8..3, 24usize..44, 4usize..6, 0u64..5), 2..6),
        loss_i in 0usize..3,
        seed in any::<u64>(),
    ) {
        let loss = [0.0, 0.15, 0.4][loss_i];
        let faults = if loss == 0.0 {
            FaultPlan::none()
        } else {
            FaultPlan::none().random_loss(loss, 9)
        };
        let graphs: Vec<(Graph, usize)> = specs
            .iter()
            .map(|&(kind, n, k, gseed)| (build_graph(kind, n, k, gseed), k))
            .collect();
        let jobs: Vec<BatchJob> = graphs
            .iter()
            .enumerate()
            .map(|(i, (g, k))| {
                let cfg = TesterConfig {
                    repetitions: Some(2),
                    ..TesterConfig::new(*k, 0.1, seed.wrapping_add(i as u64))
                };
                BatchJob::new(g, cfg)
            })
            .collect();

        let mut engine = EngineConfig {
            executor: Executor::Sequential,
            faults: faults.clone(),
            ..EngineConfig::default()
        };
        let seq_loop: Vec<TesterRun> =
            jobs.iter().map(|j| run_once(j.graph, &j.cfg, &engine).unwrap()).collect();
        engine.executor = Executor::Parallel;
        let par_loop: Vec<TesterRun> =
            jobs.iter().map(|j| run_once(j.graph, &j.cfg, &engine).unwrap()).collect();

        let session = TesterSession::builder(5, 0.1)
            .engine(EngineConfig { faults: faults.clone(), ..EngineConfig::default() })
            .build()
            .unwrap();
        for shards in [1usize, 2, 5] {
            let batch = session.test_batch(&jobs, Some(shards)).unwrap();
            prop_assert_eq!(batch.len(), jobs.len());
            for (i, (one, b)) in seq_loop.iter().zip(&batch).enumerate() {
                // Sequential one-by-one: exact equality, labels included.
                prop_assert_eq!(digest(one), digest(b), "job {} shards {}", i, shards);
                prop_assert_eq!(one.outcome.report.executor, b.outcome.report.executor);
                prop_assert_eq!(one.outcome.report.threads, b.outcome.report.threads);
                // Parallel one-by-one: identical by the determinism
                // contract (executor labels aside).
                prop_assert_eq!(digest(&par_loop[i]), digest(b), "job {} vs parallel", i);
            }
        }
    }
}

/// The sharded path with genuinely concurrent workers (the shim runs
/// inline on 1-core machines otherwise): force 4 workers and re-check
/// bit-identity on a fixed mixed batch under faults.
#[test]
fn sharded_batch_with_real_threads_is_bit_identical() {
    struct ResetWorkers;
    impl Drop for ResetWorkers {
        fn drop(&mut self) {
            rayon::force_workers_for_tests(0);
        }
    }
    let _reset = ResetWorkers;
    rayon::force_workers_for_tests(4);

    let graphs: Vec<(Graph, usize)> = vec![
        (eps_far_instance(48, 5, 0.1, 1).graph, 5),
        (matched_free_instance(30, 4), 4),
        (cycle(6), 6),
        (eps_far_instance(36, 4, 0.1, 2).graph, 4),
        (matched_free_instance(44, 5), 5),
        (cycle(5), 5),
        (eps_far_instance(40, 5, 0.08, 3).graph, 5),
    ];
    let faults = FaultPlan::none().random_loss(0.2, 5);
    let jobs: Vec<BatchJob> = graphs
        .iter()
        .enumerate()
        .map(|(i, (g, k))| {
            let cfg = TesterConfig { repetitions: Some(3), ..TesterConfig::new(*k, 0.1, i as u64) };
            BatchJob::new(g, cfg)
        })
        .collect();
    let engine = EngineConfig {
        executor: Executor::Sequential,
        faults: faults.clone(),
        ..EngineConfig::default()
    };
    let reference: Vec<TesterRun> =
        jobs.iter().map(|j| run_once(j.graph, &j.cfg, &engine).unwrap()).collect();
    let session = TesterSession::builder(5, 0.1)
        .engine(EngineConfig { faults: faults.clone(), ..EngineConfig::default() })
        .build()
        .unwrap();
    for shards in [2usize, 4, 7] {
        let batch = session.test_batch(&jobs, Some(shards)).unwrap();
        for (one, b) in reference.iter().zip(&batch) {
            assert_eq!(digest(one), digest(b), "shards={shards}");
        }
    }
    // The mixed family exercised both verdicts (sanity on the fixture).
    assert!(reference.iter().any(|r| r.reject) && reference.iter().any(|r| !r.reject));
}

/// PR-5 slot-storage reclaim: a session driving a family of graphs
/// performs exactly one slot-array allocation — every later job of the
/// same program type starts warm (the `Slot` program array moved into
/// `EngineWorkspace`), on both executors.
#[test]
fn session_batch_never_reallocates_slot_storage() {
    // Largest job first so capacity growth cannot masquerade as reuse.
    let graphs: Vec<Graph> = vec![
        eps_far_instance(60, 5, 0.1, 1).graph,
        matched_free_instance(40, 5),
        cycle(5),
        eps_far_instance(36, 5, 0.1, 2).graph,
    ];
    for executor in [Executor::Sequential, Executor::Parallel] {
        let mut session =
            TesterSession::builder(5, 0.1).repetitions(2).executor(executor).build().unwrap();
        for g in &graphs {
            session.test(g).unwrap();
        }
        let stats = session.slot_stats();
        assert_eq!(stats.takes, graphs.len() as u64, "{executor:?}");
        assert_eq!(
            stats.misses, 1,
            "{executor:?}: only the cold first job may allocate the slot array"
        );
    }
}
