//! Cross-crate end-to-end tests: generators → tester → oracle.

use ck_congest::engine::EngineConfig;
use ck_core::session::TesterSession;
use ck_core::tester::{test_ck_freeness, TesterConfig};

/// One-shot tester run through a fresh session (the session-API form of
/// the old `run_tester` free function).
fn run_once(
    g: &ck_congest::graph::Graph,
    cfg: &TesterConfig,
    engine: &EngineConfig,
) -> Result<ck_core::tester::TesterRun, ck_congest::engine::EngineError> {
    TesterSession::from_config(*cfg, engine.clone()).unwrap().test(g)
}

use ck_graphgen::basic::{cycle, cycle_cactus, grid, hypercube, petersen, torus};
use ck_graphgen::farness::{contains_ck, is_valid_ck};
use ck_graphgen::planted::{eps_far_instance, matched_free_instance, plant_on_host};
use ck_graphgen::random::{gnp, high_girth, random_tree, randomize_ids};

/// The soundness half of Theorem 1, end-to-end: whenever the network
/// rejects, the graph really does contain a `Ck` — with a concrete
/// witness validating against the sequential oracle. This holds on EVERY
/// graph (not only far ones), for every seed.
#[test]
fn reject_implies_containment_with_witness() {
    let graphs: Vec<ck_congest::graph::Graph> = vec![
        gnp(30, 0.12, 1),
        gnp(30, 0.2, 2),
        torus(4, 5),
        hypercube(4),
        petersen(),
        grid(4, 5),
        cycle_cactus(5, 5),
    ];
    for (gi, g) in graphs.iter().enumerate() {
        for k in 3..=7usize {
            for seed in 0..3u64 {
                let cfg = TesterConfig { repetitions: Some(2), ..TesterConfig::new(k, 0.1, seed) };
                let run = run_once(g, &cfg, &EngineConfig::default()).unwrap();
                if run.reject {
                    assert!(contains_ck(g, k), "graph {gi}: rejected but C{k}-free");
                    for r in run.rejections() {
                        let idx: Vec<_> = r
                            .witness
                            .cycle_ids()
                            .iter()
                            .map(|&id| g.index_of(id).expect("witness IDs exist"))
                            .collect();
                        assert!(is_valid_ck(g, k, &idx), "graph {gi} k={k}: invalid witness");
                    }
                }
            }
        }
    }
}

/// The completeness half on certified ε-far instances across the full
/// supported parameter grid.
#[test]
fn certified_far_instances_are_detected() {
    for k in 3..=8usize {
        let eps = 0.05;
        let inst = eps_far_instance(64, k, eps, 1);
        let trials = 9u64;
        let rejects =
            (0..trials).filter(|&s| test_ck_freeness(&inst.graph, k, eps, s).reject).count();
        assert!(rejects * 3 >= trials as usize * 2, "k={k}: {rejects}/{trials} below 2/3");
    }
}

/// 1-sidedness across generator families, k values, seeds, and ID
/// labelings: no Ck-free input is ever rejected.
#[test]
fn free_graphs_are_never_rejected() {
    for k in 3..=8usize {
        let frees: Vec<ck_congest::graph::Graph> =
            vec![matched_free_instance(50, k), random_tree(50, 3), high_girth(50, k, 500, 9)];
        for g in &frees {
            for seed in 0..3u64 {
                let g = randomize_ids(g, seed + 100);
                let cfg = TesterConfig { repetitions: Some(3), ..TesterConfig::new(k, 0.1, seed) };
                assert!(
                    !run_once(&g, &cfg, &EngineConfig::default()).unwrap().reject,
                    "false reject at k={k}"
                );
            }
        }
    }
}

/// Planted copies on a host graph are found even when the host adds
/// unrelated structure (other cycle lengths, higher degrees).
#[test]
fn planted_on_noisy_host_detected() {
    // Host: bipartite-ish torus has C4s; plant C5s (odd) on top.
    let host = torus(5, 8); // only even cycles
    let inst = plant_on_host(&host, 5, 4, 7);
    assert!(contains_ck(&inst.graph, 5));
    let hits = (0..8u64)
        .filter(|&s| {
            let cfg = TesterConfig { repetitions: Some(40), ..TesterConfig::new(5, 0.05, s) };
            run_once(&inst.graph, &cfg, &EngineConfig::default()).unwrap().reject
        })
        .count();
    assert!(hits >= 6, "planted C5s barely detected: {hits}/8");
}

/// The tester ignores cycles of other lengths: a C6-rich torus is C5-free
/// and C7-free and must be accepted for those k.
#[test]
fn other_cycle_lengths_do_not_confuse() {
    let g = torus(4, 6);
    for k in [3usize, 5, 7] {
        for seed in 0..3u64 {
            let cfg = TesterConfig { repetitions: Some(3), ..TesterConfig::new(k, 0.1, seed) };
            assert!(!run_once(&g, &cfg, &EngineConfig::default()).unwrap().reject);
        }
    }
    // … while C4s are everywhere.
    let rejects = (0..3u64)
        .filter(|&s| {
            let cfg = TesterConfig { repetitions: Some(10), ..TesterConfig::new(4, 0.1, s) };
            run_once(&g, &cfg, &EngineConfig::default()).unwrap().reject
        })
        .count();
    assert_eq!(rejects, 3, "every run should catch a C4 on the torus");
}

/// Single cycles are deterministically caught for every k and seed (all
/// edges lie on the one cycle, so arbitration cannot pick a bad edge).
#[test]
fn lone_cycles_always_caught() {
    for k in 3..=10usize {
        for seed in 0..3u64 {
            let g = randomize_ids(&cycle(k), seed + 1);
            let cfg = TesterConfig { repetitions: Some(1), ..TesterConfig::new(k, 0.1, seed) };
            assert!(run_once(&g, &cfg, &EngineConfig::default()).unwrap().reject, "C{k}");
        }
    }
}
