//! Property-based tests (proptest) over random graphs, seeds, and
//! parameters — the invariants the paper proves deterministically.

use ck_congest::engine::{EngineConfig, Executor};
use ck_congest::graph::{Edge, Graph, GraphBuilder};
use ck_core::prune::{lemma3_bound, prune_literal, prune_representative, PrunerKind};
use ck_core::seq::IdSeq;
use ck_core::session::TesterSession;
use ck_core::single::detect_ck_through_edge;
use ck_core::tester::TesterConfig;

/// One-shot tester run through a fresh session (the session-API form of
/// the old `run_tester` free function).
fn run_once(
    g: &ck_congest::graph::Graph,
    cfg: &TesterConfig,
    engine: &EngineConfig,
) -> Result<ck_core::tester::TesterRun, ck_congest::engine::EngineError> {
    TesterSession::from_config(*cfg, engine.clone()).unwrap().test(g)
}

use ck_graphgen::farness::{contains_ck, has_ck_through_edge, is_valid_ck};
use proptest::prelude::*;

/// Strategy: a random simple graph on `n ∈ \[4, 16\]` nodes with each edge
/// kept by an independent coin, guaranteed nonempty edge set.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (4usize..16, any::<u64>()).prop_map(|(n, seed)| {
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s >> 33
        };
        let mut b = GraphBuilder::new(n);
        let mut any_edge = false;
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                if next() % 100 < 30 {
                    b.edge(i, j);
                    any_edge = true;
                }
            }
        }
        if !any_edge {
            b.edge(0, 1);
        }
        b.build().unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Lemma 2 as an exhaustive iff: the single-edge detector agrees with
    /// the sequential oracle on every edge of random graphs.
    #[test]
    fn single_edge_matches_oracle(g in arb_graph(), k in 3usize..8) {
        for &e in g.edges() {
            let expected = has_ck_through_edge(&g, k, e);
            let run = detect_ck_through_edge(
                &g, k, e, PrunerKind::Representative, &EngineConfig::default()).unwrap();
            prop_assert_eq!(run.reject, expected, "k={} e={:?}", k, e);
        }
    }

    /// 1-sided error of the FULL tester on arbitrary graphs: a reject
    /// implies a real Ck (and the witness reconstructs it).
    #[test]
    fn full_tester_never_lies(g in arb_graph(), k in 3usize..8, seed in any::<u64>()) {
        let cfg = TesterConfig { repetitions: Some(2), ..TesterConfig::new(k, 0.1, seed) };
        let run = run_once(&g, &cfg, &EngineConfig::default()).unwrap();
        if run.reject {
            prop_assert!(contains_ck(&g, k));
            for r in run.rejections() {
                let idx: Vec<_> = r.witness.cycle_ids().iter()
                    .map(|&id| g.index_of(id).unwrap()).collect();
                prop_assert!(is_valid_ck(&g, k, &idx));
            }
        } else {
            // No positive claim when accepting — but if the graph is
            // Ck-free, accept is forced; cross-check one direction.
            if contains_ck(&g, k) {
                // acceptable: detection is probabilistic
            } else {
                prop_assert!(!run.reject);
            }
        }
    }

    /// Lemma 3: message loads of the single-edge detector never exceed
    /// the worst-round bound, on any graph and edge.
    #[test]
    fn message_bound_always_holds(g in arb_graph(), k in 4usize..9) {
        let bound = (2..=k / 2).map(|t| lemma3_bound(k, t)).max().unwrap_or(1);
        let e = g.edges()[0];
        let run = detect_ck_through_edge(
            &g, k, e, PrunerKind::Representative, &EngineConfig::default()).unwrap();
        prop_assert!((run.max_sent_seqs() as u128) <= bound);
    }

    /// Determinism: sequential and parallel executors agree bit-for-bit.
    #[test]
    fn executors_agree(g in arb_graph(), k in 3usize..7, seed in any::<u64>()) {
        let cfg = TesterConfig { repetitions: Some(1), ..TesterConfig::new(k, 0.2, seed) };
        let mut e = EngineConfig { executor: Executor::Sequential, ..EngineConfig::default() };
        let a = run_once(&g, &cfg, &e).unwrap();
        e.executor = Executor::Parallel;
        let b = run_once(&g, &cfg, &e).unwrap();
        prop_assert_eq!(a.reject, b.reject);
        prop_assert_eq!(a.outcome.report.per_round, b.outcome.report.per_round);
    }

    /// Determinism under every fault-model v2 kind: the full tester's
    /// verdicts, witnesses, wire statistics, and fault reports agree
    /// bit-for-bit across executors with crash-stop nodes, cut links,
    /// burst loss, and frame corruption reshaping `CkMsg` traffic.
    #[test]
    fn executors_agree_under_fault_v2(g in arb_graph(), k in 3usize..6, seed in any::<u64>()) {
        use ck_congest::fault::FaultPlan;
        let plans = [
            FaultPlan::none().crash(0, 2).crash(2, 4),
            FaultPlan::none().cut_link(0, 1).cut_link(2, 3),
            FaultPlan::none().burst_loss(0.25, 0.4, seed),
            FaultPlan::none().corrupt_frames(0.4, seed),
            FaultPlan::none()
                .crash(1, 3)
                .burst_loss(0.15, 0.5, seed)
                .corrupt_frames(0.2, seed ^ 9)
                .random_loss(0.1, seed ^ 5),
        ];
        let cfg = TesterConfig {
            repetitions: Some(2),
            verify_witnesses: true,
            ..TesterConfig::new(k, 0.2, seed)
        };
        for faults in plans {
            let mut e = EngineConfig {
                executor: Executor::Sequential,
                faults: faults.clone(),
                ..EngineConfig::default()
            };
            let a = run_once(&g, &cfg, &e).unwrap();
            e.executor = Executor::Parallel;
            let b = run_once(&g, &cfg, &e).unwrap();
            prop_assert_eq!(a.reject, b.reject, "{:?}", faults);
            prop_assert_eq!(&a.outcome.verdicts, &b.outcome.verdicts, "{:?}", faults);
            prop_assert_eq!(&a.outcome.report.per_round, &b.outcome.report.per_round, "{:?}", faults);
            prop_assert_eq!(&a.outcome.report.faults, &b.outcome.report.faults, "{:?}", faults);
            prop_assert_eq!(a.discarded_witnesses, b.discarded_witnesses, "{:?}", faults);
        }
    }

    /// Soundness under aggressive frame corruption: with witness
    /// verification on, a Ck-free graph is never rejected no matter how
    /// much garbage the corrupting links deliver, and on any graph every
    /// surviving rejection still reconstructs a real Ck.
    #[test]
    fn corruption_cannot_defeat_verified_one_sidedness(
        g in arb_graph(),
        k in 3usize..7,
        corrupt_pct in 30u32..=90,
        seed in any::<u64>(),
    ) {
        use ck_congest::fault::FaultPlan;
        let engine = EngineConfig {
            faults: FaultPlan::none().corrupt_frames(f64::from(corrupt_pct) / 100.0, seed ^ 3),
            ..EngineConfig::default()
        };
        let cfg = TesterConfig {
            repetitions: Some(2),
            verify_witnesses: true,
            ..TesterConfig::new(k, 0.1, seed)
        };
        let run = run_once(&g, &cfg, &engine).unwrap();
        if run.reject {
            prop_assert!(contains_ck(&g, k), "fabricated reject on a Ck-free graph");
            for r in run.rejections() {
                let idx: Vec<_> = r.witness.cycle_ids().iter()
                    .map(|&id| g.index_of(id).unwrap()).collect();
                prop_assert!(is_valid_ck(&g, k, &idx), "surviving witness must be a real cycle");
            }
        }
        if !contains_ck(&g, k) {
            prop_assert!(!run.reject);
        }
    }
}

/// Strategy for pruner inputs: `count` sequences of length `t−1` over a
/// small ID universe (collisions likely — the interesting regime).
fn arb_prune_input() -> impl Strategy<Value = (Vec<Vec<u64>>, usize, usize)> {
    (3usize..10).prop_flat_map(|k| {
        (Just(k), 2usize..=(k / 2).max(2)).prop_flat_map(move |(k, t)| {
            let t = t.min(k / 2);
            let seq = proptest::collection::vec(1u64..12, t.saturating_sub(1).max(1));
            (proptest::collection::vec(seq, 0..10), Just(k), Just(t))
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    /// The two pruning implementations are extensionally identical.
    #[test]
    fn pruners_are_equivalent((raw, k, t) in arb_prune_input()) {
        if t < 2 || t > k / 2 { return Ok(()); }
        // Deduplicate IDs within a sequence (sequences are simple paths).
        let seqs: Vec<IdSeq> = raw.iter().filter_map(|ids| {
            let mut seen = std::collections::HashSet::new();
            let distinct: Vec<u64> = ids.iter().copied().filter(|&x| seen.insert(x)).collect();
            (distinct.len() == t - 1).then(|| IdSeq::from_slice(&distinct))
        }).collect();
        let lit = prune_literal(&seqs, k, t);
        let rep = prune_representative(&seqs, k, t);
        prop_assert_eq!(lit, rep, "k={} t={} seqs={:?}", k, t, seqs);
    }

    /// Lemma 3 bound holds for arbitrary inputs, and the accepted family
    /// preserves every (k−t)-witness (the Lemma 2 invariant).
    #[test]
    fn pruner_bound_and_witness_preservation((raw, k, t) in arb_prune_input()) {
        if t < 2 || t > k / 2 { return Ok(()); }
        let mut seqs: Vec<IdSeq> = raw.iter().filter_map(|ids| {
            let mut seen = std::collections::HashSet::new();
            let distinct: Vec<u64> = ids.iter().copied().filter(|&x| seen.insert(x)).collect();
            (distinct.len() == t - 1).then(|| IdSeq::from_slice(&distinct))
        }).collect();
        seqs.sort_unstable();
        seqs.dedup();
        let acc = prune_representative(&seqs, k, t);
        prop_assert!((acc.len() as u128) <= lemma3_bound(k, t));

        // Witness preservation over all (k−t)-subsets of seen IDs.
        let mut ids: Vec<u64> = seqs.iter().flat_map(|s| s.iter()).collect();
        ids.sort_unstable();
        ids.dedup();
        let budget = k - t;
        let mut c: Vec<u64> = Vec::new();
        fn rec(ids: &[u64], start: usize, c: &mut Vec<u64>, budget: usize,
               seqs: &[IdSeq], acc: &[usize]) -> bool {
            let disj = |s: &IdSeq| c.iter().all(|&x| !s.contains(x));
            let ok = !seqs.iter().any(disj) || acc.iter().any(|&i| disj(&seqs[i]));
            if !ok { return false; }
            if c.len() == budget { return true; }
            for i in start..ids.len() {
                c.push(ids[i]);
                if !rec(ids, i + 1, c, budget, seqs, acc) { return false; }
                c.pop();
            }
            true
        }
        prop_assert!(rec(&ids, 0, &mut c, budget, &seqs, &acc),
            "witness lost: k={} t={} seqs={:?} acc={:?}", k, t, seqs, acc);
    }
}

/// Edge tags order by rank first, endpoints second — the arbitration
/// assumption of Phase 1 (deterministic unique minimum).
#[test]
fn edge_tag_total_order() {
    use ck_core::msg::EdgeTag;
    let mut tags: Vec<EdgeTag> = vec![
        EdgeTag::new(5, 2, 1),
        EdgeTag::new(3, 9, 8),
        EdgeTag::new(3, 1, 7),
        EdgeTag::new(5, 1, 2),
    ];
    tags.sort();
    assert_eq!(tags[0], EdgeTag::new(3, 1, 7));
    assert_eq!(tags[1], EdgeTag::new(3, 8, 9));
    // The two rank-5 tags on the same edge are equal.
    assert_eq!(tags[2], tags[3]);
}

/// Oracle sanity on a known instance family, driving the property tests'
/// trust anchor: `has_ck_through_edge` on cycles.
#[test]
fn oracle_trust_anchor() {
    for k in 3..9 {
        let g = ck_graphgen::basic::cycle(k);
        for &e in g.edges() {
            assert!(has_ck_through_edge(&g, k, e));
            assert!(!has_ck_through_edge(&g, k + 1, Edge::new(e.a, e.b)));
        }
    }
}
