//! Session/legacy parity: the `Session` / `TesterSession` builders must
//! be **bit-identical** to the deprecated free-function entry points —
//! reports (rounds, executor, per-round wire counters), verdicts, and
//! `pool_outstanding` — across both executors, fault plans, and
//! repeated session reuse (a recycled workspace is observationally a
//! fresh one).
#![allow(deprecated)] // comparing against the legacy entry points is the point

use ck_congest::engine::{run, run_with_params, EngineConfig, Executor, RunOutcome};
use ck_congest::fault::FaultPlan;
use ck_congest::graph::{Graph, GraphBuilder};
use ck_congest::message::WireParams;
use ck_congest::node::{Inbox, Outbox, Program, Status};
use ck_congest::session::Session;
use ck_core::batch::{run_tester_batch, BatchJob, BatchOptions};
use ck_core::session::TesterSession;
use ck_core::tester::{run_tester, NodeVerdict, TesterConfig, TesterRun};
use ck_graphgen::basic::cycle;
use ck_graphgen::planted::{eps_far_instance, matched_free_instance};
use proptest::prelude::*;

/// Flood-min with a TTL — the engine-level probe protocol.
struct MinFlood {
    best: u64,
    ttl: u32,
    changed: bool,
}

impl Program for MinFlood {
    type Msg = u64;
    type Verdict = u64;

    fn step(&mut self, round: u32, inbox: Inbox<'_, u64>, out: &mut Outbox<u64>) -> Status {
        for inc in inbox.iter() {
            if *inc.msg < self.best {
                self.best = *inc.msg;
                self.changed = true;
            }
        }
        if round >= self.ttl {
            return Status::Halted;
        }
        if round == 0 || self.changed {
            out.broadcast(self.best);
            self.changed = false;
        }
        Status::Running
    }

    fn verdict(&self) -> u64 {
        self.best
    }
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (6usize..40, any::<u64>()).prop_map(|(n, seed)| {
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s >> 33
        };
        let mut b = GraphBuilder::new(n);
        // A path backbone keeps it connected; random chords vary it.
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                if j == i + 1 || next() % 100 < 12 {
                    b.edge(i, j);
                }
            }
        }
        b.build().unwrap()
    })
}

fn engine_digest(o: &RunOutcome<u64>) -> (Vec<u64>, u32, bool, &'static str, usize, Vec<u64>) {
    (
        o.verdicts.clone(),
        o.report.rounds,
        o.report.all_halted,
        o.report.executor,
        o.report.threads,
        o.report.per_round.iter().flat_map(|r| [r.messages, r.bits, r.max_link_bits]).collect(),
    )
}

fn tester_digest(r: &TesterRun) -> (bool, u32, Vec<NodeVerdict>, u32, Vec<u64>) {
    (
        r.reject,
        r.repetitions,
        // NodeVerdict includes pool_outstanding and the full witnesses.
        r.outcome.verdicts.clone(),
        r.outcome.report.rounds,
        r.outcome
            .report
            .per_round
            .iter()
            .flat_map(|s| [s.messages, s.bits, s.max_link_bits, s.max_link_messages])
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Engine level: a reused `Session` equals fresh legacy `run` /
    /// `run_with_params` calls bit for bit, on both executors, with and
    /// without faults, run after run.
    #[test]
    fn session_equals_legacy_engine_entry_points(
        g in arb_graph(),
        loss_i in 0usize..3,
        record_rounds in any::<bool>(),
    ) {
        let loss = [0.0, 0.2, 0.45][loss_i];
        let faults = if loss == 0.0 {
            FaultPlan::none()
        } else {
            FaultPlan::none().random_loss(loss, 7)
        };
        let ttl = g.n() as u32;
        let mk = |init: ck_congest::node::NodeInit| MinFlood {
            best: init.id,
            ttl,
            changed: false,
        };
        for executor in [Executor::Sequential, Executor::Parallel] {
            let cfg = EngineConfig {
                executor,
                record_rounds,
                faults: faults.clone(),
                ..EngineConfig::default()
            };
            let mut session = Session::builder(&g).config(cfg.clone()).build();
            // Reuse the session: every repetition must equal a fresh
            // legacy run (reports, verdicts, wire counters).
            for rep in 0..3 {
                let legacy = run(&g, &cfg, mk).unwrap();
                let via_session = session.run(mk).unwrap();
                prop_assert_eq!(
                    engine_digest(&legacy),
                    engine_digest(&via_session),
                    "rep {} {:?}",
                    rep,
                    executor
                );
            }
            // Pinned wire parameters: run_with_params vs the builder's
            // wire_params knob.
            let fat = WireParams {
                id_bits: WireParams::for_graph(&g).id_bits + 5,
                ..WireParams::for_graph(&g)
            };
            let legacy = run_with_params(&g, &cfg, &fat, &mut mk.clone()).unwrap();
            let via_session = Session::builder(&g)
                .config(cfg.clone())
                .wire_params(fat)
                .build()
                .run(mk)
                .unwrap();
            prop_assert_eq!(engine_digest(&legacy), engine_digest(&via_session), "{:?}", executor);
        }
    }

    /// Tester level: a reused `TesterSession` equals fresh legacy
    /// `run_tester` calls bit for bit — verdicts (including
    /// `pool_outstanding` and witnesses), reports, wire counters — on
    /// both executors and under faults; and `test_batch` equals the
    /// legacy batch runner.
    #[test]
    fn tester_session_equals_legacy_tester_entry_points(
        k in 4usize..6,
        seed in 0u64..50,
        loss_i in 0usize..3,
    ) {
        let loss = [0.0, 0.15, 0.35][loss_i];
        let faults = if loss == 0.0 {
            FaultPlan::none()
        } else {
            FaultPlan::none().random_loss(loss, seed ^ 0x5bd1e995)
        };
        let far = eps_far_instance(40, k, 0.1, seed % 5);
        let free = matched_free_instance(30, k);
        let ck = cycle(k);
        let cfg = TesterConfig { repetitions: Some(2), ..TesterConfig::new(k, 0.1, seed) };
        for executor in [Executor::Sequential, Executor::Parallel] {
            let engine = EngineConfig {
                executor,
                faults: faults.clone(),
                ..EngineConfig::default()
            };
            let mut session = TesterSession::from_config(cfg, engine.clone()).unwrap();
            // One session across three different graphs, twice over:
            // cross-graph workspace/scratch reuse must stay invisible.
            for pass in 0..2 {
                for g in [&far.graph, &free, &ck] {
                    let legacy = run_tester(g, &cfg, &engine).unwrap();
                    let via_session = session.test(g).unwrap();
                    prop_assert_eq!(
                        tester_digest(&legacy),
                        tester_digest(&via_session),
                        "pass {} n={} {:?}",
                        pass,
                        g.n(),
                        executor
                    );
                }
            }
        }
        // Batch: session sharded runner vs the legacy one.
        let jobs: Vec<BatchJob> = [&far.graph, &free, &ck]
            .into_iter()
            .enumerate()
            .map(|(i, g)| {
                BatchJob::new(g, TesterConfig { seed: seed + i as u64, ..cfg })
            })
            .collect();
        let engine = EngineConfig { faults: faults.clone(), ..EngineConfig::default() };
        let legacy = run_tester_batch(
            &jobs,
            &BatchOptions { engine: engine.clone(), shards: Some(2) },
        )
        .unwrap();
        let session = TesterSession::from_config(cfg, engine).unwrap();
        let via_session = session.test_batch(&jobs, Some(2)).unwrap();
        prop_assert_eq!(legacy.len(), via_session.len());
        for (a, b) in legacy.iter().zip(&via_session) {
            prop_assert_eq!(tester_digest(a), tester_digest(b));
        }
    }
}
