//! SoA/boxed layout parity: the arena-backed tester
//! ([`ck_core::tester::NodeLayout::Soa`]) must be **bit-identical** to
//! the boxed reference layout — verdicts (including witnesses and
//! `pool_outstanding`), reject bits, reports, per-round wire counters —
//! across executors, fault plans, scan backends, early abort, and
//! repeated warm-session reuse. The two layouts share one `Program`
//! implementation by construction (`CkTesterCore` is generic over the
//! buffer seam); these tests pin the construction down end to end,
//! where the arena's CSR offsets, chunk-shared scratch, and raw-pointer
//! views could otherwise diverge silently.

use ck_congest::engine::{EngineConfig, Executor};
use ck_congest::fault::FaultPlan;
use ck_core::scan::ScanBackend;
use ck_core::session::TesterSession;
use ck_core::tester::{NodeLayout, NodeVerdict, TesterConfig, TesterRun};
use ck_graphgen::basic::cycle;
use ck_graphgen::planted::{eps_far_instance, matched_free_instance};
use proptest::prelude::*;

/// Everything observable about a tester run, for exact comparison.
fn digest(r: &TesterRun) -> (bool, u32, Vec<NodeVerdict>, u32, Vec<u64>) {
    (
        r.reject,
        r.repetitions,
        // NodeVerdict carries pool_outstanding and the full witnesses.
        r.outcome.verdicts.clone(),
        r.outcome.report.rounds,
        r.outcome
            .report
            .per_round
            .iter()
            .flat_map(|s| [s.messages, s.bits, s.max_link_bits, s.max_link_messages])
            .collect(),
    )
}

fn session(cfg: TesterConfig, engine: &EngineConfig, layout: NodeLayout) -> TesterSession {
    TesterSession::from_config(TesterConfig { layout, ..cfg }, engine.clone()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// A warm SoA session equals a warm boxed session bit for bit, on
    /// both executors, with and without faults, run after run and
    /// across graphs of different shapes (arena reprepared per run).
    #[test]
    fn soa_equals_boxed_across_executors_and_faults(
        k in 4usize..6,
        seed in 0u64..50,
        loss_i in 0usize..3,
        early_abort in any::<bool>(),
    ) {
        let loss = [0.0, 0.15, 0.35][loss_i];
        let faults = if loss == 0.0 {
            FaultPlan::none()
        } else {
            FaultPlan::none().random_loss(loss, seed ^ 0x9e3779b9)
        };
        let far = eps_far_instance(40, k, 0.1, seed % 5);
        let free = matched_free_instance(30, k);
        let ck = cycle(k);
        let cfg = TesterConfig {
            repetitions: Some(2),
            early_abort,
            ..TesterConfig::new(k, 0.1, seed)
        };
        for executor in [Executor::Sequential, Executor::Parallel] {
            let engine = EngineConfig {
                executor,
                faults: faults.clone(),
                ..EngineConfig::default()
            };
            let mut boxed = session(cfg, &engine, NodeLayout::Boxed);
            let mut soa = session(cfg, &engine, NodeLayout::Soa);
            // One session pair across three graphs, twice over: the
            // arena re-`prepare` between different shapes and the warm
            // same-shape rerun must both stay invisible.
            for pass in 0..2 {
                for g in [&far.graph, &free, &ck] {
                    let a = boxed.test(g).unwrap();
                    let b = soa.test(g).unwrap();
                    prop_assert_eq!(
                        digest(&a),
                        digest(&b),
                        "pass {} n={} {:?}",
                        pass,
                        g.n(),
                        executor
                    );
                }
            }
        }
    }

    /// Scan-backend × layout grid: the chunk-shared scan scratch under
    /// SoA must not perturb any backend's output.
    #[test]
    fn soa_equals_boxed_across_scan_backends(
        k in 4usize..6,
        seed in 0u64..30,
    ) {
        let far = eps_far_instance(36, k, 0.1, seed % 3);
        let cfg = TesterConfig { repetitions: Some(2), ..TesterConfig::new(k, 0.1, seed) };
        for scan in [ScanBackend::Scalar, ScanBackend::Lanes] {
            let cfg = TesterConfig { scan, ..cfg };
            for executor in [Executor::Sequential, Executor::Parallel] {
                let engine = EngineConfig { executor, ..EngineConfig::default() };
                let a = session(cfg, &engine, NodeLayout::Boxed).test(&far.graph).unwrap();
                let b = session(cfg, &engine, NodeLayout::Soa).test(&far.graph).unwrap();
                prop_assert_eq!(digest(&a), digest(&b), "{:?} {:?}", scan, executor);
            }
        }
    }
}

/// Forced worker counts (the CI thread-matrix leg drives this binary
/// with `CK_FORCED_WORKERS` set): the SoA arena's chunk-shared scratch
/// is keyed off the engine's actual partition, so parity must hold at
/// every worker count, not just the machine's.
#[test]
fn soa_equals_boxed_under_forced_workers() {
    let k = 5;
    let far = eps_far_instance(48, k, 0.1, 3);
    let cfg = TesterConfig { repetitions: Some(2), ..TesterConfig::new(k, 0.1, 11) };
    let engine = EngineConfig { executor: Executor::Parallel, ..EngineConfig::default() };
    let baseline = session(cfg, &engine, NodeLayout::Boxed).test(&far.graph).unwrap();
    for workers in [1, 2, 3, 8] {
        rayon::force_workers_for_tests(workers);
        let a = session(cfg, &engine, NodeLayout::Boxed).test(&far.graph).unwrap();
        let b = session(cfg, &engine, NodeLayout::Soa).test(&far.graph).unwrap();
        rayon::force_workers_for_tests(0);
        assert_eq!(digest(&a), digest(&baseline), "workers={workers} boxed drifted");
        assert_eq!(digest(&b), digest(&baseline), "workers={workers} soa drifted");
    }
}
