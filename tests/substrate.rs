//! Substrate cross-validation: topology analysis, classic protocols,
//! fault injection, and the detectors all telling one consistent story.

use ck_baselines::forest::test_cycle_freeness;
use ck_congest::engine::EngineConfig;
use ck_congest::graph::{Edge, Graph};
use ck_congest::protocols::{build_bfs_tree, elect_min_id};
use ck_congest::topology::{bipartition, bridges, core_numbers, is_bipartite, triangle_count};
use ck_core::girth::girth_via_detectors;
use ck_core::prune::PrunerKind;
use ck_core::single::detect_ck_through_edge;
use ck_graphgen::basic::{cycle_cactus, grid, lollipop, petersen, theta};
use ck_graphgen::families::{circulant, mobius_kantor, pappus, random_bipartite};
use ck_graphgen::farness::{contains_ck, count_ck};
use ck_graphgen::io::{parse_dimacs, to_dimacs};
use ck_graphgen::random::{connected_gnm, gnp, randomize_ids};

/// A bridge lies on no cycle: the single-edge detector must accept every
/// bridge for every k, and must reject some k on at least one non-bridge
/// edge of a cyclic graph.
#[test]
fn bridges_are_invisible_to_cycle_detectors() {
    let graphs: Vec<Graph> = vec![lollipop(5, 4), cycle_cactus(3, 5), theta(3, 2)];
    for g in &graphs {
        let bridge_set: std::collections::HashSet<Edge> = bridges(g).into_iter().collect();
        for &e in g.edges() {
            if !bridge_set.contains(&e) {
                continue;
            }
            for k in 3..=8usize {
                let run = detect_ck_through_edge(
                    g,
                    k,
                    e,
                    PrunerKind::Representative,
                    &EngineConfig::default(),
                )
                .unwrap();
                assert!(!run.reject, "bridge {e:?} cannot lie on a C{k}");
            }
        }
    }
}

/// Bipartite graphs: the odd-k testers must accept; the distributed
/// forest test agrees with `m ≥ n` on connectivity components.
#[test]
fn bipartite_families_reject_no_odd_k() {
    let graphs: Vec<Graph> =
        vec![mobius_kantor(), pappus(), random_bipartite(7, 9, 0.35, 2), grid(4, 4)];
    for g in &graphs {
        assert!(is_bipartite(g));
        let coloring = bipartition(g).unwrap();
        for e in g.edges() {
            assert_ne!(coloring[e.a as usize], coloring[e.b as usize]);
        }
        for k in [3usize, 5, 7] {
            for &e in g.edges().iter().take(6) {
                let run = detect_ck_through_edge(
                    g,
                    k,
                    e,
                    PrunerKind::Representative,
                    &EngineConfig::default(),
                )
                .unwrap();
                assert!(!run.reject, "odd C{k} in a bipartite graph?");
            }
        }
    }
}

/// The girth probe built from detectors agrees with the BFS girth on
/// every structured family.
#[test]
fn detector_girth_matches_structural_girth() {
    let graphs: Vec<Graph> =
        vec![mobius_kantor(), pappus(), circulant(11, &[1, 2]), petersen(), gnp(18, 0.2, 4)];
    for g in &graphs {
        let expected = g.girth().filter(|&x| x <= 8).map(|x| x as usize);
        assert_eq!(girth_via_detectors(g, 8), expected);
    }
}

/// Triangle counts: topology census vs the exact Ck oracle at k = 3.
#[test]
fn triangle_census_is_consistent() {
    let graphs: Vec<Graph> = vec![circulant(12, &[1, 2]), gnp(24, 0.25, 9), lollipop(6, 2)];
    for g in &graphs {
        assert_eq!(triangle_count(g), count_ck(g, 3));
        assert_eq!(triangle_count(g) > 0, contains_ck(g, 3));
    }
}

/// The distributed forest test agrees with the structural cycle oracle,
/// and the elected leader really is the minimum ID.
#[test]
fn classic_protocols_agree_with_structure() {
    for seed in 0..5u64 {
        let tree = connected_gnm(20, 19, seed);
        let tree = randomize_ids(&tree, seed + 50);
        let (cyclic, _) = test_cycle_freeness(&tree, &EngineConfig::default()).unwrap();
        assert!(!cyclic);
        let (leader, _) = elect_min_id(&tree, &EngineConfig::default()).unwrap();
        assert_eq!(leader, *tree.ids().iter().min().unwrap());

        let dense = connected_gnm(20, 30, seed);
        let (cyclic, _) = test_cycle_freeness(&dense, &EngineConfig::default()).unwrap();
        assert!(cyclic);
        // BFS tree distances match the sequential BFS.
        let verdicts = build_bfs_tree(&dense, 0, &EngineConfig::default()).unwrap();
        let dist = dense.bfs_distances(0);
        for (v, bv) in verdicts.iter().enumerate() {
            assert_eq!(bv.dist, dist[v]);
        }
    }
}

/// Core numbers lower-bound cycle membership: a node of core < 2 is on
/// no cycle at all, so no witness may ever contain it.
#[test]
fn low_core_nodes_never_appear_in_witnesses() {
    let g = lollipop(6, 5); // clique core 5, tail core 1
    let core = core_numbers(&g);
    for k in 3..=6usize {
        for &e in g.edges() {
            let run = detect_ck_through_edge(
                &g,
                k,
                e,
                PrunerKind::Representative,
                &EngineConfig::default(),
            )
            .unwrap();
            for v in &run.outcome.verdicts {
                for w in &v.all_witnesses {
                    for id in w.cycle_ids() {
                        let idx = g.index_of(id).unwrap();
                        assert!(core[idx as usize] >= 2, "acyclic node {idx} in a witness");
                    }
                }
            }
        }
    }
}

/// DIMACS round trips preserve detector behavior.
#[test]
fn dimacs_round_trip_preserves_verdicts() {
    let g = petersen();
    let h = parse_dimacs(&to_dimacs(&g)).unwrap();
    for k in [5usize, 6] {
        for (i, &e) in g.edges().iter().enumerate() {
            let a = detect_ck_through_edge(
                &g,
                k,
                e,
                PrunerKind::Representative,
                &EngineConfig::default(),
            )
            .unwrap();
            let eh = h.edges()[i];
            let b = detect_ck_through_edge(
                &h,
                k,
                eh,
                PrunerKind::Representative,
                &EngineConfig::default(),
            )
            .unwrap();
            assert_eq!(a.reject, b.reject);
        }
    }
}
